"""Columnar record batches: the engine's in-memory data format.

``RecordBatch`` plays the role of Spark's Tungsten rows: a compact format
that the compiled (vectorized) operators work on directly.  Each column is a
numpy array; numeric and boolean columns use native dtypes, strings use
object arrays.  The per-record baseline engines never use this module —
that difference is exactly the performance mechanism the paper attributes
its Yahoo!-benchmark advantage to (§9.1).

Null handling: strings may be ``None`` inside object arrays and doubles may
be NaN; integer and boolean columns are non-nullable.  Operators that can
introduce nulls into numeric columns (outer joins) promote them to double.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import struct
import threading

import numpy as np

from repro.sql.types import DataType, DoubleType, StructType


def _column_array(values, data_type: DataType) -> np.ndarray:
    """Build a numpy column of the right dtype from an iterable of values."""
    if data_type.numpy_dtype is object:
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    return np.asarray(values, dtype=data_type.numpy_dtype)


class RecordBatch:
    """An immutable-by-convention columnar chunk of rows with a schema.

    Columns are numpy arrays of equal length stored in a dict keyed by
    column name.  Mutating a batch's arrays in place is not supported;
    operators always build new batches.
    """

    __slots__ = ("columns", "schema", "num_rows")

    def __init__(self, columns: dict, schema: StructType):
        self.columns = columns
        self.schema = schema
        self.num_rows = len(next(iter(columns.values()))) if columns else 0
        if set(columns) != set(schema.names):
            raise ValueError(
                f"column/schema mismatch: {sorted(columns)} vs {schema.names}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, schema: StructType) -> "RecordBatch":
        """An empty batch with the given schema."""
        cols = {
            f.name: np.empty(0, dtype=f.data_type.numpy_dtype) for f in schema
        }
        return cls(cols, schema)

    @classmethod
    def from_rows(cls, rows, schema: StructType) -> "RecordBatch":
        """Build a batch from an iterable of dict-like rows."""
        rows = list(rows)
        cols = {}
        for field in schema:
            values = [row.get(field.name) for row in rows]
            cols[field.name] = _column_array(values, field.data_type)
        return cls(cols, schema)

    @classmethod
    def from_columns(cls, schema: StructType, **named_arrays) -> "RecordBatch":
        """Build a batch from keyword numpy arrays, coercing dtypes."""
        cols = {}
        for field in schema:
            arr = named_arrays[field.name]
            if field.data_type.numpy_dtype is object:
                if not (isinstance(arr, np.ndarray) and arr.dtype == object):
                    out = np.empty(len(arr), dtype=object)
                    out[:] = list(arr)
                    arr = out
            else:
                arr = np.asarray(arr, dtype=field.data_type.numpy_dtype)
            cols[field.name] = arr
        return cls(cols, schema)

    @classmethod
    def concat(cls, batches, schema: StructType = None) -> "RecordBatch":
        """Concatenate batches that share a schema."""
        batches = list(batches)
        batches = [b for b in batches if b.num_rows > 0] or batches[:1]
        if not batches:
            if schema is None:
                raise ValueError("cannot concat zero batches without a schema")
            return cls.empty(schema)
        schema = batches[0].schema
        if len(batches) == 1:
            return batches[0]
        cols = {
            name: np.concatenate([b.columns[name] for b in batches])
            for name in schema.names
        }
        return cls(cols, schema)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the column array for ``name``."""
        return self.columns[name]

    def to_rows(self) -> list:
        """Materialize as a list of :class:`repro.sql.row.Row`."""
        from repro.sql.row import Row

        names = self.schema.names
        cols = [self.columns[n] for n in names]
        out = []
        for i in range(self.num_rows):
            out.append(Row(zip(names, (self._pyvalue(c[i]) for c in cols))))
        return out

    @staticmethod
    def _pyvalue(value):
        """Convert a numpy scalar to the natural Python value."""
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, float) and value != value:  # NaN -> None
            return None
        return value

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def select(self, names) -> "RecordBatch":
        """Keep only the named columns, in the given order."""
        schema = self.schema.select(names)
        return RecordBatch({n: self.columns[n] for n in names}, schema)

    def rename(self, mapping: dict) -> "RecordBatch":
        """Rename columns according to ``{old: new}``."""
        fields = []
        cols = {}
        for field in self.schema:
            new = mapping.get(field.name, field.name)
            fields.append((new, field.data_type, field.nullable))
            cols[new] = self.columns[field.name]
        return RecordBatch(cols, StructType(tuple(fields)))

    def with_column(self, name: str, array: np.ndarray, data_type: DataType) -> "RecordBatch":
        """Return a batch with one column added or replaced."""
        cols = dict(self.columns)
        cols[name] = array
        if name in self.schema:
            fields = tuple(
                (f.name, data_type if f.name == name else f.data_type)
                for f in self.schema
            )
            schema = StructType(fields)
        else:
            schema = self.schema.add(name, data_type)
        return RecordBatch(cols, schema)

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        """Keep only the rows where ``mask`` is True."""
        if mask.all():
            return self
        cols = {n: a[mask] for n, a in self.columns.items()}
        return RecordBatch(cols, self.schema)

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Gather rows by integer position (repeats allowed)."""
        cols = {n: a[indices] for n, a in self.columns.items()}
        return RecordBatch(cols, self.schema)

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Rows in ``[start, stop)``."""
        cols = {n: a[start:stop] for n, a in self.columns.items()}
        return RecordBatch(cols, self.schema)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"RecordBatch({self.num_rows} rows, {self.schema!r})"


# ---------------------------------------------------------------------------
# Stable hashing and hash partitioning (shared-nothing parallel execution)
# ---------------------------------------------------------------------------
#
# The partitioned execution layer shards every epoch's delta by key so
# that per-shard stateful operators never see each other's keys.  Two
# requirements shape the hash:
#
# * **stable across processes and runs** — shard placement decides where
#   a key's state lives, and recovery/rescaling must be able to recompute
#   it from a restored checkpoint (so Python's randomized ``hash()`` is
#   out);
# * **computable both vectorized and per-key** — the hot path hashes
#   whole key columns at once (:func:`stable_hash_arrays`), while restore
#   and rescaling hash one decoded state-key tuple at a time
#   (:func:`stable_hash_key`); the two MUST agree bit-for-bit.
#
# Numeric columns go through a splitmix64 finalizer on their 64-bit
# patterns; strings (the object-dtype slow path) use a truncated blake2b.

_MASK64 = (1 << 64) - 1
_HASH_SEED = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_NONE_SENTINEL = 0x6E756C6C  # b'null'


def _mix64_scalar(z: int) -> int:
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX_A) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_B) & _MASK64
    return z ^ (z >> 31)


def _mix64_array(z: np.ndarray) -> np.ndarray:
    z = z.astype(np.uint64, copy=True)
    z ^= z >> np.uint64(30)
    z *= np.uint64(_MIX_A)
    z ^= z >> np.uint64(27)
    z *= np.uint64(_MIX_B)
    z ^= z >> np.uint64(31)
    return z


def stable_hash_value(value) -> int:
    """64-bit hash of a single key value; stable across runs.

    Must agree with the per-dtype vectorized paths in
    :func:`stable_hash_arrays`: ints/bools hash their two's-complement
    bits, floats their IEEE-754 bits, strings a truncated blake2b digest.
    """
    if isinstance(value, (bool, int, np.integer)):
        return _mix64_scalar(int(value) & _MASK64)
    if isinstance(value, (float, np.floating)):
        bits = int.from_bytes(struct.pack("<d", float(value)), "little")
        return _mix64_scalar(bits)
    if value is None:
        return _mix64_scalar(_NONE_SENTINEL)
    if isinstance(value, str):
        digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
        return _mix64_scalar(int.from_bytes(digest, "little"))
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return _mix64_scalar(int.from_bytes(digest, "little"))


def _hash_column(arr: np.ndarray, n: int) -> np.ndarray:
    if arr.dtype == object:
        return np.fromiter(
            (stable_hash_value(v) for v in arr.tolist()),
            dtype=np.uint64, count=n,
        )
    if arr.dtype.kind == "f":
        bits = np.ascontiguousarray(arr, dtype=np.float64).view(np.uint64)
    elif arr.dtype.kind == "b":
        bits = arr.astype(np.uint64)
    else:
        bits = np.ascontiguousarray(arr, dtype=np.int64).view(np.uint64)
    return _mix64_array(bits)


def stable_hash_arrays(arrays) -> np.ndarray:
    """Combined row hashes of parallel key columns (vectorized).

    ``result[i]`` equals ``stable_hash_key(tuple(a[i] for a in arrays))``
    for every row — the agreement the state-rescaling path relies on.
    """
    arrays = [np.asarray(a) for a in arrays]
    n = len(arrays[0])
    h = np.full(n, _HASH_SEED, dtype=np.uint64)
    for i, arr in enumerate(arrays):
        ch = _hash_column(arr, n)
        ch += np.uint64(i + 1)
        h = _mix64_array(h ^ ch)
    return h


def stable_hash_key(values) -> int:
    """Combined hash of one key tuple (scalar twin of
    :func:`stable_hash_arrays`)."""
    if not isinstance(values, (tuple, list)):
        values = (values,)
    h = _HASH_SEED
    for i, value in enumerate(values):
        ch = (stable_hash_value(value) + i + 1) & _MASK64
        h = _mix64_scalar(h ^ ch)
    return h


def shard_of_key(values, num_shards: int) -> int:
    """The shard a key tuple belongs to (0 when only one shard)."""
    if num_shards <= 1:
        return 0
    return stable_hash_key(values) % num_shards


def shard_assignments(arrays, num_shards: int) -> np.ndarray:
    """Per-row shard ids for parallel key columns."""
    hashes = stable_hash_arrays(arrays)
    return (hashes % np.uint64(num_shards)).astype(np.int64)


def partition_by_assignment(batch: "RecordBatch", assign: np.ndarray,
                            num_shards: int) -> tuple:
    """Split ``batch`` into per-shard sub-batches by precomputed shard ids.

    Returns ``(sub_batches, row_indices)``; ``row_indices[s]`` maps each
    shard-local row back to its position in ``batch`` (row order within a
    shard is preserved, which keeps merged outputs deterministic).
    """
    parts = []
    indices = []
    for s in range(num_shards):
        idx = np.flatnonzero(assign == s)
        indices.append(idx)
        parts.append(batch.take(idx))
    return parts, indices


def hash_partition(batch: "RecordBatch", key_names, num_shards: int) -> tuple:
    """Hash-partition ``batch`` by the named key columns.

    The vectorized kernel behind the partitioned execution layer:
    ``(sub_batches, row_indices)`` such that every row lands in the shard
    :func:`shard_of_key` would assign its key tuple to.
    """
    assign = shard_assignments(
        [batch.columns[n] for n in key_names], num_shards
    )
    return partition_by_assignment(batch, assign, num_shards)


# ---------------------------------------------------------------------------
# Shared-memory batch transport (process-backed epoch execution)
# ---------------------------------------------------------------------------
#
# The process executor ships each epoch's per-shard input deltas to its
# workers.  Pickling whole batches copies every column twice (serialize +
# deserialize); instead, numeric columns are packed once into one
# ``multiprocessing.shared_memory`` segment and the *descriptor* — segment
# name, per-column dtype/offset/length — crosses the pipe.  The worker
# maps the segment and builds zero-copy ``np.frombuffer`` views over it.
# Object-dtype columns (strings) have no stable wire layout, so they fall
# back to pickle inside the descriptor.  Small batches skip shared memory
# entirely: below ``SHM_MIN_BYTES`` the segment round-trip (shm_open +
# mmap, twice) costs more than pickling the handful of rows.
#
# Leak-proofing: segments are named ``repro-<pid>-<seq>`` and tracked in a
# process-local registry; the creator must ``unlink`` every segment (the
# executor does so once the tasks reading it finish), and an ``atexit``
# sweep unlinks anything still registered so a crashed driver never
# strands files in /dev/shm.  Tests assert the registry and /dev/shm are
# clean after every run.

SHM_PREFIX = f"repro-{os.getpid()}-"
SHM_MIN_BYTES = 16384

_shm_seq = itertools.count()
_live_segments = {}
_live_lock = threading.Lock()


def _shared_memory_cls():
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory


def _attach_shm(name: str):
    """Attach to an existing segment without registering it with the
    resource tracker.  Readers never own segments; letting the tracker
    adopt one makes it unlink the creator's live segment when the reader
    exits (the classic double-unlink bug).  Python 3.13 grew
    ``track=False`` for exactly this; older versions need the manual
    unregister."""
    SharedMemory = _shared_memory_cls()
    try:
        return SharedMemory(name=name, track=False)
    except TypeError:
        pass
    shm = SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass
    return shm


def live_shm_segments() -> list:
    """Names of shared-memory segments created and not yet unlinked."""
    with _live_lock:
        return sorted(_live_segments)


def _sweep_shm_segments() -> int:
    """Unlink every still-registered segment (atexit safety net)."""
    freed = 0
    with _live_lock:
        leaked = list(_live_segments.items())
        _live_segments.clear()
    for _name, shm in leaked:
        try:
            shm.close()
            shm.unlink()
            freed += 1
        except (FileNotFoundError, OSError):
            pass
    return freed


atexit.register(_sweep_shm_segments)


class SharedBatch:
    """Descriptor of a RecordBatch encoded for cross-process transport.

    Either a shared-memory form (``segment`` set; numeric columns live in
    the segment, object columns pickled in ``object_payload``) or a plain
    pickle form for small batches (``payload`` set).  The descriptor
    itself is small and picklable; the creating process owns the segment
    and must call :meth:`release` after all readers have decoded it.
    """

    __slots__ = ("schema", "num_rows", "segment", "columns_meta",
                 "object_payload", "payload", "_shm")

    def __init__(self, schema, num_rows, segment=None, columns_meta=None,
                 object_payload=None, payload=None):
        self.schema = schema
        self.num_rows = num_rows
        self.segment = segment
        self.columns_meta = columns_meta
        self.object_payload = object_payload
        self.payload = payload
        self._shm = None  # creator-side handle; not pickled

    def __getstate__(self):
        return (self.schema, self.num_rows, self.segment, self.columns_meta,
                self.object_payload, self.payload)

    def __setstate__(self, state):
        (self.schema, self.num_rows, self.segment, self.columns_meta,
         self.object_payload, self.payload) = state
        self._shm = None

    # ------------------------------------------------------------------
    @classmethod
    def encode(cls, batch: "RecordBatch") -> "SharedBatch":
        """Encode a batch; shared memory when the numeric payload is
        large enough to pay for the segment round-trip."""
        numeric = []
        objects = []
        total = 0
        for name in batch.schema.names:
            arr = batch.columns[name]
            if arr.dtype == object:
                objects.append(name)
            else:
                arr = np.ascontiguousarray(arr)
                numeric.append((name, arr))
                total += arr.nbytes
        if total < SHM_MIN_BYTES:
            return cls(batch.schema, batch.num_rows,
                       payload=pickle.dumps(
                           batch.columns, protocol=pickle.HIGHEST_PROTOCOL))
        SharedMemory = _shared_memory_cls()
        name = f"{SHM_PREFIX}{next(_shm_seq)}"
        shm = SharedMemory(name=name, create=True, size=max(total, 1))
        with _live_lock:
            _live_segments[name] = shm
        meta = []
        offset = 0
        for col_name, arr in numeric:
            end = offset + arr.nbytes
            shm.buf[offset:end] = arr.tobytes()
            meta.append((col_name, arr.dtype.str, offset, len(arr)))
            offset = end
        object_payload = None
        if objects:
            object_payload = pickle.dumps(
                {n: batch.columns[n] for n in objects},
                protocol=pickle.HIGHEST_PROTOCOL)
        out = cls(batch.schema, batch.num_rows, segment=name,
                  columns_meta=meta, object_payload=object_payload)
        out._shm = shm
        return out

    def decode(self) -> "RecordBatch":
        """Rebuild the batch; numeric columns are zero-copy views over
        the mapped segment (valid until the creator unlinks it *and* the
        last reader drops its views)."""
        if self.payload is not None:
            return RecordBatch(pickle.loads(self.payload), self.schema)
        shm = self._shm
        if shm is None:
            with _live_lock:
                owned = _live_segments.get(self.segment)
            if owned is not None:  # same-process decode (thread fallback)
                shm = owned
            else:
                shm = self._shm = _attach_shm(self.segment)
        columns = {}
        for name, dtype_str, offset, count in self.columns_meta:
            columns[name] = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype_str), count=count,
                offset=offset)
        if self.object_payload is not None:
            columns.update(pickle.loads(self.object_payload))
        return RecordBatch(columns, self.schema)

    @property
    def ipc_bytes(self) -> int:
        """Bytes that cross the pipe for this descriptor (not the
        zero-copy segment payload)."""
        size = len(self.payload) if self.payload is not None else 0
        if self.object_payload is not None:
            size += len(self.object_payload)
        return size

    def release(self) -> None:
        """Creator-side cleanup: close and unlink the segment (idempotent)."""
        if self.segment is None:
            return
        with _live_lock:
            shm = _live_segments.pop(self.segment, None)
        self._shm = None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass

    def close_reader(self) -> None:
        """Reader-side cleanup: drop this process's mapping.  Safe to
        skip — mappings die with the process — but releasing eagerly
        keeps long-lived workers from accumulating maps.  A BufferError
        (live views into the segment) leaves the mapping open."""
        if self.segment is None or self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:
            return
        self._shm = None


def promote_nullable(schema: StructType) -> StructType:
    """Promote non-nullable numeric columns to double so they can hold NaN.

    Used by outer joins, which pad unmatched rows with nulls.
    """
    fields = []
    for f in schema:
        dtype = f.data_type
        if dtype.numpy_dtype is not object and not isinstance(dtype, DoubleType):
            dtype = DoubleType()
        fields.append((f.name, dtype, True))
    return StructType(tuple(fields))
