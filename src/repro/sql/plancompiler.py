"""Whole-plan compilation: the reproduction's whole-stage code generation.

Spark SQL's Tungsten engine compiles a chain of physical operators into a
single Java method per *stage* — whole-stage code generation — so that at
runtime a batch flows through one fused loop with no per-operator virtual
dispatch (paper §5.3; §9.1 credits this, together with the binary format,
for Structured Streaming's Yahoo!-benchmark margin).  The closest faithful
analogue in pure Python is to compile the *logical plan* once into a tree
of closures over numpy kernels:

* every expression is pre-compiled (:func:`repro.sql.codegen
  .compile_expression`) at plan time, never per batch;
* every operator's kernel (join probe, group encoding, sort keys, dedup)
  is pre-resolved into the closure, so no ``isinstance`` plan walk happens
  per batch;
* adjacent **stateless** operators — ``scan → filter → project → filter``
  chains — are *fused* into a single stage closure: back-to-back filter
  masks are combined with ``&`` and applied in one pass, and projections
  compose by inlining their expressions (Spark's collapse-project +
  combine-filters, here performed by the compiler), so no intermediate
  ``RecordBatch`` is materialized between them.

``compile_plan(plan)`` returns a :class:`CompiledPlan`; calling it with a
scan-override dict executes the query.  The streaming operators compile
their sub-plans **once at operator construction** and call the compiled
pipeline every epoch — the per-epoch fixed cost of a streaming query is
then only kernel execution over the delta (the complement, for plan-time
work, of the delta-proportional state work in the stateful operators).

Fusion safety: combining filter masks evaluates later predicates on rows
an earlier predicate would have removed.  That is only sound for *total*
expressions (ones that cannot raise on any row — numpy kernels with
errstate suppressed).  Expressions that can raise or have side effects
(UDFs, casts from object columns, scalar functions) act as fusion
barriers: the compiler seals the current stage and starts a new one, so
they always observe exactly the rows sequential execution would feed
them.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.sql import codegen
from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.grouping import encode_groups
from repro.sql.optimizer import substitute_columns
from repro.sql.types import StructType
from repro.sql.physical import (
    _coerce,
    dedup_batch,
    join_batches,
    map_groups_batch,
    run_aggregate,
    sort_batch,
)

#: Total count of compile_plan invocations (diagnostics; lifecycle tests
#: assert this does not grow while a compiled query serves epochs).
PLAN_COMPILATIONS = 0

# Expression nodes that are *total*: evaluation cannot raise for any row
# (numpy kernels with errstate suppressed, null-tolerant membership and
# null checks).  Only these may be hoisted across a filter boundary when
# fusing stages; everything else (Udf, Cast from object columns,
# ScalarFunction, CaseWhen over unsafe children) is a fusion barrier.
_TOTAL_NODES = (
    E.ColumnRef, E.Literal, E.Alias, E.Arithmetic, E.Comparison,
    E.BooleanOp, E.Not, E.In, E.IsNull, E.Like,
)


def _is_total(expr: E.Expression) -> bool:
    if isinstance(expr, E.CaseWhen):
        return all(_is_total(c) for c in expr.children)
    if not isinstance(expr, _TOTAL_NODES):
        return False
    return all(_is_total(c) for c in expr.children)


class CompiledPlan:
    """A logical plan compiled to a closure tree, executable many times.

    Calling the object runs the pipeline: ``compiled(overrides)`` where
    ``overrides`` maps :class:`~repro.sql.logical.Scan` nodes (by object
    or ``id``) to input batches, exactly like
    :func:`repro.sql.physical.execute`.
    """

    __slots__ = ("_fn", "schema", "plan", "__weakref__")

    def __init__(self, fn, schema, plan):
        self._fn = fn
        self.schema = schema
        self.plan = plan

    def __call__(self, overrides: dict = None) -> RecordBatch:
        return self._fn(overrides or {})


def compile_plan(plan: L.LogicalPlan) -> CompiledPlan:
    """Compile ``plan`` once into a reusable pipeline.

    All plan-tree traversal, expression compilation and kernel resolution
    happens here; the returned object's ``__call__`` does only kernel
    work per invocation.
    """
    global PLAN_COMPILATIONS
    PLAN_COMPILATIONS += 1
    return CompiledPlan(_compile(plan), plan.schema, plan)


_compiled_cache = weakref.WeakKeyDictionary()


def compiled_for(plan: L.LogicalPlan) -> CompiledPlan:
    """Memoizing :func:`compile_plan`: one compilation per plan object.

    Plans are immutable by convention (optimizer rules rebuild nodes), so
    caching by identity is safe; the weak table lets dead plans collect.
    """
    compiled = _compiled_cache.get(plan)
    if compiled is None:
        compiled = compile_plan(plan)
        _compiled_cache[plan] = compiled
    return compiled


# ---------------------------------------------------------------------------
# Node dispatch (plan time only)
# ---------------------------------------------------------------------------

def _compile(plan: L.LogicalPlan):
    """Compile a plan node into ``fn(overrides) -> RecordBatch``."""
    if isinstance(plan, (L.Filter, L.Project)):
        return _compile_stateless_segment(plan)
    if isinstance(plan, L.Scan):
        return _compile_scan(plan)
    if isinstance(plan, L.Aggregate):
        return _compile_aggregate(plan)
    if isinstance(plan, L.Join):
        left_fn = _compile(plan.left)
        right_fn = _compile(plan.right)
        return lambda ov: join_batches(left_fn(ov), right_fn(ov), plan)
    if isinstance(plan, L.Sort):
        child_fn = _compile(plan.child)
        orders = plan.orders
        return lambda ov: sort_batch(child_fn(ov), orders)
    if isinstance(plan, L.Limit):
        child_fn = _compile(plan.child)
        n = plan.n
        return lambda ov: child_fn(ov).slice(0, n)
    if isinstance(plan, L.Deduplicate):
        child_fn = _compile(plan.child)
        subset = plan.subset
        return lambda ov: dedup_batch(child_fn(ov), subset)
    if isinstance(plan, L.Union):
        left_fn = _compile(plan.left)
        right_fn = _compile(plan.right)
        schema = plan.schema
        names = schema.names

        def run_union(ov):
            left = left_fn(ov)
            right = right_fn(ov)
            return RecordBatch.concat([left, right.select(names)], schema)

        return run_union
    if isinstance(plan, L.WithWatermark):
        # Watermarks only affect streaming state management; in batch
        # execution they are a no-op passthrough (§4.3.1).
        return _compile(plan.child)
    if isinstance(plan, L.MapGroupsWithState):
        child_fn = _compile(plan.child)
        return lambda ov: map_groups_batch(plan, child_fn(ov))
    raise NotImplementedError(f"no compiler for {type(plan).__name__}")


def _compile_scan(plan: L.Scan):
    schema = plan.schema

    def run_scan(overrides):
        if plan in overrides or id(plan) in overrides:
            return overrides.get(plan, overrides.get(id(plan)))
        provider = plan.provider
        if provider is None:
            raise RuntimeError(
                f"scan {plan.name!r} has no data (missing override?)")
        return RecordBatch.concat(list(provider.read_batches()), schema)

    return run_scan


def _compile_aggregate(plan: L.Aggregate):
    child_fn = _compile(plan.child)
    grouping = compile_grouping(plan)

    def run_agg(overrides):
        expanded, codes, uniques = grouping(child_fn(overrides))
        return run_aggregate(plan, expanded, codes, uniques)

    return run_agg


def compile_grouping(plan: L.Aggregate):
    """Pre-compile an aggregate's group-key pipeline.

    Returns ``fn(batch) -> (expanded_batch, codes, unique_key_tuples)``:
    the window-expanded batch, dense group codes, and key tuples ordered
    (plain grouping values..., window_start).  All grouping expressions
    compile here, once; the streaming stateful aggregate calls the result
    every epoch with zero expression-compilation cost.
    """
    child_schema = plan.child.schema
    key_fns = [
        codegen.compile_expression(g, child_schema)
        for g in plan.plain_grouping
    ]
    window = plan.window

    def grouping(batch):
        if window is not None:
            row_idx, starts = window.assign_batch(batch)
            batch = batch.take(row_idx)
            key_arrays = [fn(batch) for fn in key_fns]
            key_arrays.append(starts)
        else:
            key_arrays = [fn(batch) for fn in key_fns]
        codes, uniques = encode_groups(key_arrays)
        return batch, codes, uniques

    return grouping


# ---------------------------------------------------------------------------
# Stateless fusion: filter/project chains -> fused stage closures
# ---------------------------------------------------------------------------

def _compile_stateless_segment(top: L.LogicalPlan):
    """Fuse a maximal Filter/Project chain ending at ``top``.

    The chain is split into *stages*.  Within one stage every filter mask
    is an expression over the stage's input schema (filters below a
    projection stay as written; filters above one have the projection
    inlined into them), so the stage runs as: evaluate all masks on the
    input, AND them, apply the combined mask once, then build the output
    columns — one pass, no intermediate batches.  Non-total expressions
    seal the current stage and start a new one (see module docstring).
    """
    nodes = []
    bottom = top
    while isinstance(bottom, (L.Filter, L.Project)):
        nodes.append(bottom)
        bottom = bottom.child
    nodes.reverse()  # bottom-up order
    source_fn = _compile(bottom)

    stages = []  # (mask_exprs, proj or None, in_schema, out_schema)
    in_schema = bottom.schema
    masks = []      # Expressions over in_schema
    proj = None     # list of (output_name, Expression over in_schema)
    sealed_below = bottom  # deepest node already accounted for by stages

    def seal(at_node):
        nonlocal masks, proj, in_schema, sealed_below
        if masks or proj is not None:
            stages.append((masks, proj, in_schema, at_node.schema))
            in_schema = at_node.schema
            masks, proj = [], None
        sealed_below = at_node

    def mapping():
        return None if proj is None else {name: expr for name, expr in proj}

    for node in nodes:
        if isinstance(node, L.Filter):
            cond = node.condition
            inlined = cond if proj is None else substitute_columns(
                cond, mapping())
            if _is_total(inlined):
                masks.append(inlined)
            else:
                # Unsafe predicate: it must see exactly the rows that
                # survive everything below it, so flush what we have and
                # let it open a new stage as its sole (first) mask.
                seal(node.child)
                masks.append(cond)
        else:  # Project
            if proj is not None and any(
                    not _is_total(expr) for _name, expr in proj):
                # Don't duplicate or reorder unsafe projection exprs by
                # inlining them into the next stage's expressions.
                seal(node.child)
            subs = mapping()
            proj = [
                (e.output_name,
                 e if subs is None else substitute_columns(e, subs))
                for e in node.exprs
            ]
    seal(nodes[-1])

    stage_fns = [_compile_stage(*stage) for stage in stages]
    if len(stage_fns) == 1:
        stage = stage_fns[0]
        return lambda overrides: stage(source_fn(overrides))

    def run_segment(overrides):
        batch = source_fn(overrides)
        for stage in stage_fns:
            batch = stage(batch)
        return batch

    return run_segment


def _compile_stage(mask_exprs, proj, in_schema, out_schema):
    """Compile one fused stage into ``fn(batch) -> RecordBatch``."""
    mask_fns = [
        codegen.compile_expression(m, in_schema) for m in mask_exprs
    ]
    if proj is None:
        def run_filter(batch):
            mask = np.asarray(mask_fns[0](batch), dtype=bool)
            for fn in mask_fns[1:]:
                mask = mask & np.asarray(fn(batch), dtype=bool)
            return batch.filter(mask)

        return run_filter

    proj_fns = [
        (field.name,
         codegen.compile_expression(expr, in_schema),
         field.data_type)
        for field, (_name, expr) in zip(out_schema, proj)
    ]
    # Only the columns the projection reads survive the combined mask:
    # the stage never materializes filtered versions of untouched input
    # columns (the part of whole-stage fusion per-operator execution
    # cannot do — Filter must filter every column it passes along).
    needed = set()
    for _name, expr in proj:
        needed |= expr.references()
    sub_fields = [f for f in in_schema.fields if f.name in needed]
    sub_schema = StructType(sub_fields) if len(sub_fields) != len(
        in_schema.fields) else in_schema
    sub_names = [f.name for f in sub_fields]

    def run_stage(batch):
        if mask_fns:
            mask = np.asarray(mask_fns[0](batch), dtype=bool)
            for fn in mask_fns[1:]:
                mask = mask & np.asarray(fn(batch), dtype=bool)
            if sub_names and not mask.all():
                batch = RecordBatch(
                    {n: batch.columns[n][mask] for n in sub_names},
                    sub_schema,
                )
            elif sub_schema is not in_schema:
                batch = RecordBatch(
                    {n: batch.columns[n] for n in sub_names}, sub_schema
                ) if sub_names else batch.filter(mask)
        columns = {
            name: _coerce(fn(batch), dtype) for name, fn, dtype in proj_fns
        }
        return RecordBatch(columns, out_schema)

    return run_stage
