"""Public expression construction helpers, mirroring ``pyspark.sql.functions``.

These return :class:`~repro.sql.dataframe.Column` wrappers so users can write
the paper's examples almost verbatim::

    data.where(col("state") == "CA")
        .group_by(window(col("time"), "30s"))
        .agg(avg("latency"))
"""

from __future__ import annotations

from repro.sql import expressions as E
from repro.sql.dataframe import Column
from repro.sql.types import DataType, type_from_name


def _unwrap(value) -> E.Expression:
    """Accept a Column, an Expression or a column name string."""
    if isinstance(value, Column):
        return value.expr
    if isinstance(value, E.Expression):
        return value
    if isinstance(value, str):
        return E.ColumnRef(value)
    return E.Literal(value)


def col(name: str) -> Column:
    """Reference a column by name."""
    return Column(E.ColumnRef(name))


def lit(value) -> Column:
    """A literal value column."""
    return Column(E.Literal(value))


def window(time_column, duration, slide=None) -> Column:
    """Assign rows to event-time windows for use in ``group_by``.

    ``duration`` / ``slide`` accept seconds or strings like ``"10 seconds"``,
    ``"1 hour"``.  Omitting ``slide`` gives tumbling windows.
    """
    return Column(E.WindowExpr(_unwrap(time_column), duration, slide))


def count(column=None) -> Column:
    """``count(*)`` with no argument, else null-skipping ``count(col)``."""
    child = _unwrap(column) if column is not None else None
    return Column(E.Count(child))


def sum(column) -> Column:  # noqa: A001 - mirrors Spark's function name
    """Sum of a numeric column."""
    return Column(E.Sum(_unwrap(column)))


def avg(column) -> Column:
    """Arithmetic mean of a numeric column."""
    return Column(E.Avg(_unwrap(column)))


def min(column) -> Column:  # noqa: A001
    """Minimum of a column."""
    return Column(E.Min(_unwrap(column)))


def max(column) -> Column:  # noqa: A001
    """Maximum of a column."""
    return Column(E.Max(_unwrap(column)))


def collect_set(column) -> Column:
    """Sorted list of distinct values of a column."""
    return Column(E.CollectSet(_unwrap(column)))


def first(column) -> Column:
    """First non-null value per group, in arrival order."""
    return Column(E.First(_unwrap(column)))


def last(column) -> Column:
    """Last non-null value per group, in arrival order."""
    return Column(E.Last(_unwrap(column)))


def count_distinct(column) -> Column:
    """Exact distinct count (state grows with distinct values)."""
    return Column(E.CountDistinct(_unwrap(column)))


def approx_count_distinct(column, precision: int = 12) -> Column:
    """Approximate distinct count with bounded state (HyperLogLog).

    ``precision`` p gives 2^p registers and ~1.04/sqrt(2^p) relative
    error (p=12: ~1.6%).
    """
    return Column(E.ApproxCountDistinct(_unwrap(column), precision))


def _scalar(name):
    def build(*columns) -> Column:
        return Column(E.ScalarFunction(name, [_unwrap(c) for c in columns]))

    build.__name__ = name
    build.__doc__ = f"Built-in scalar function ``{name}``."
    return build


upper = _scalar("upper")
lower = _scalar("lower")
trim = _scalar("trim")
length = _scalar("length")
concat = _scalar("concat")
contains = _scalar("contains")
starts_with = _scalar("starts_with")
ends_with = _scalar("ends_with")
substring = _scalar("substring")
split_part = _scalar("split_part")
abs = _scalar("abs")  # noqa: A001
round = _scalar("round")  # noqa: A001
floor = _scalar("floor")
ceil = _scalar("ceil")
sqrt = _scalar("sqrt")
greatest = _scalar("greatest")
least = _scalar("least")


def when(condition, value) -> Column:
    """Begin a CASE WHEN chain; continue with ``.when()`` / ``.otherwise()``.

    ``value`` is treated as a literal (wrap in ``col()`` to reference a
    column), matching Spark's convention.
    """
    value_expr = value.expr if isinstance(value, Column) else (
        value if isinstance(value, E.Expression) else E.Literal(value)
    )
    return Column(E.CaseWhen([(_unwrap(condition), value_expr)]))


def coalesce(*columns) -> Column:
    """First non-null value among the arguments."""
    exprs = [_unwrap(c) for c in columns]
    branches = [(E.Not(E.IsNull(e)), e) for e in exprs[:-1]]
    return Column(E.CaseWhen(branches, exprs[-1]))


def udf(func, return_type) -> "callable":
    """Wrap a Python function as a scalar UDF.

    Returns a callable that builds a Column when applied to columns::

        parse = udf(lambda s: s.split(":")[0], "string")
        df.select(parse(col("address")).alias("host"))
    """
    if isinstance(return_type, str):
        return_type = type_from_name(return_type)
    if not isinstance(return_type, DataType):
        raise TypeError("return_type must be a DataType or type name")

    def apply(*columns) -> Column:
        return Column(E.Udf(func, [_unwrap(c) for c in columns], return_type))

    apply.__name__ = getattr(func, "__name__", "udf")
    return apply
