"""Group encoding: map key columns to dense integer group codes.

Used by both the batch hash aggregate and the streaming stateful aggregate;
codes feed the vectorized per-group partial kernels on
:class:`~repro.sql.expressions.AggregateFunction`.
"""

from __future__ import annotations

import numpy as np


def encode_groups(arrays) -> tuple:
    """Encode parallel key arrays into ``(codes, unique_key_tuples)``.

    ``codes[i]`` is the dense id of row i's key; ``unique_key_tuples[c]``
    is the Python tuple for code ``c``.  All-numeric keys take a fully
    vectorized path; unique keys come back in lexicographic order (the
    order a structured-array ``np.unique`` would give).
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("encode_groups requires at least one key array")
    n = len(arrays[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), []

    if all(a.dtype != object for a in arrays):
        if len(arrays) == 1:
            uniques, codes = np.unique(arrays[0], return_inverse=True)
            return codes.astype(np.int64, copy=False), [(k,) for k in uniques.tolist()]
        encoded = _encode_numeric_multi(arrays, n)
        if encoded is not None:
            return encoded
        return _encode_structured(arrays, n)

    # General path: Python dict over key tuples (needed for string keys).
    lists = [a.tolist() for a in arrays]
    keys = lists[0] if len(lists) == 1 else list(zip(*lists))
    seen = {}
    codes = np.empty(n, dtype=np.int64)
    uniques = []
    for i, key in enumerate(keys):
        code = seen.get(key)
        if code is None:
            code = len(uniques)
            seen[key] = code
            uniques.append(key if isinstance(key, tuple) else (key,))
        codes[i] = code
    return codes, uniques


def _encode_numeric_multi(arrays, n: int):
    """Multi-column numeric keys via combined row hashes.

    A structured-array ``np.unique`` compares void elements with the GIL
    held (and ~10x slower than a flat integer sort); hashing the key
    columns into one uint64 per row keeps the sort on a primitive dtype,
    which NumPy sorts in parallel-friendly nogil code.  Every row is then
    verified against its group's representative key — a 64-bit collision
    (or a NaN key, which never equals itself) returns ``None`` and the
    caller falls back to the exact structured path.
    """
    from repro.sql.batch import stable_hash_arrays

    hashed = stable_hash_arrays(arrays)
    _, first_idx, codes = np.unique(
        hashed, return_index=True, return_inverse=True)
    codes = codes.astype(np.int64, copy=False)
    reps = [a[first_idx] for a in arrays]
    matches = np.ones(n, dtype=bool)
    for a, rep in zip(arrays, reps):
        matches &= a == rep[codes]
    if not matches.all():
        return None
    # Reorder groups lexicographically (first key column primary) so the
    # output order matches the structured-unique path exactly.
    order = np.lexsort(tuple(reps[::-1]))
    remap = np.empty(len(order), dtype=np.int64)
    remap[order] = np.arange(len(order))
    uniques = list(zip(*(rep[order].tolist() for rep in reps)))
    return remap[codes], uniques


def _encode_structured(arrays, n: int):
    """Exact fallback: structured-array unique (lexicographic order)."""
    packed = np.empty(n, dtype=[(f"k{i}", a.dtype) for i, a in enumerate(arrays)])
    for i, a in enumerate(arrays):
        packed[f"k{i}"] = a
    uniques, codes = np.unique(packed, return_inverse=True)
    return codes.astype(np.int64, copy=False), [tuple(k) for k in uniques.tolist()]
