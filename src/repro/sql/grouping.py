"""Group encoding: map key columns to dense integer group codes.

Used by both the batch hash aggregate and the streaming stateful aggregate;
codes feed the vectorized per-group partial kernels on
:class:`~repro.sql.expressions.AggregateFunction`.
"""

from __future__ import annotations

import numpy as np


def encode_groups(arrays) -> tuple:
    """Encode parallel key arrays into ``(codes, unique_key_tuples)``.

    ``codes[i]`` is the dense id of row i's key; ``unique_key_tuples[c]``
    is the Python tuple for code ``c``.  All-numeric keys take a fully
    vectorized path through a structured-array ``np.unique``.
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("encode_groups requires at least one key array")
    n = len(arrays[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), []

    if all(a.dtype != object for a in arrays):
        if len(arrays) == 1:
            uniques, codes = np.unique(arrays[0], return_inverse=True)
            return codes.astype(np.int64, copy=False), [(k,) for k in uniques.tolist()]
        packed = np.empty(n, dtype=[(f"k{i}", a.dtype) for i, a in enumerate(arrays)])
        for i, a in enumerate(arrays):
            packed[f"k{i}"] = a
        uniques, codes = np.unique(packed, return_inverse=True)
        return codes.astype(np.int64, copy=False), [tuple(k) for k in uniques.tolist()]

    # General path: Python dict over key tuples (needed for string keys).
    lists = [a.tolist() for a in arrays]
    keys = lists[0] if len(lists) == 1 else list(zip(*lists))
    seen = {}
    codes = np.empty(n, dtype=np.int64)
    uniques = []
    for i, key in enumerate(keys):
        code = seen.get(key)
        if code is None:
            code = len(uniques)
            seen[key] = code
            uniques.append(key if isinstance(key, tuple) else (key,))
        codes[i] = code
    return codes, uniques
