"""Schema and data type definitions for the relational engine.

Types mirror the subset of Spark SQL's type system that the paper's examples
and evaluation exercise.  Timestamps are represented as float seconds since
the Unix epoch, which keeps event-time arithmetic (watermarks, windows)
simple and fully vectorizable with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class DataType:
    """Base class for all column data types.

    Instances are stateless and compare equal by class, so the singletons
    exported from this module (``IntegerType``, ``StringType``, ...) can be
    used interchangeably with freshly constructed instances.
    """

    #: numpy dtype used for columnar storage of this type.
    numpy_dtype: object = object

    #: Python types accepted as values of this type.
    python_types: tuple = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:
        return type(self).__name__

    @property
    def simple_name(self) -> str:
        """Lower-case name without the ``Type`` suffix, e.g. ``"integer"``."""
        return type(self).__name__[: -len("Type")].lower()

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` is a valid instance of this type."""
        if value is None:
            return True
        return isinstance(value, self.python_types)


class NumericType(DataType):
    """Marker base class for types usable in arithmetic and aggregation."""


class IntegralType(NumericType):
    """Marker base class for integer types."""


class IntegerType(IntegralType):
    """32-bit signed integer (stored as int64 internally)."""

    numpy_dtype = np.int64
    python_types = (int, np.integer)


class LongType(IntegralType):
    """64-bit signed integer."""

    numpy_dtype = np.int64
    python_types = (int, np.integer)


class DoubleType(NumericType):
    """64-bit floating point."""

    numpy_dtype = np.float64
    python_types = (int, float, np.integer, np.floating)


class StringType(DataType):
    """UTF-8 string, stored in object arrays."""

    numpy_dtype = object
    python_types = (str,)


class BooleanType(DataType):
    """Boolean."""

    numpy_dtype = np.bool_
    python_types = (bool, np.bool_)


class TimestampType(NumericType):
    """Event or processing time: float seconds since the Unix epoch."""

    numpy_dtype = np.float64
    python_types = (int, float, np.integer, np.floating)


#: Reserved column name carrying a row's signed Z-set multiplicity on
#: weighted (retraction) streams; see :mod:`repro.streaming.zset`.
#: Defined here, at the bottom of the import graph, so the logical plan
#: and sink layers can special-case it without importing the streaming
#: package.
WEIGHT_COLUMN = "__weight__"


def hashable_value(value):
    """Canonical hashable form of a cell value for multiset row keys.

    Folds numpy scalars to Python ones and integral floats to ints so a
    value compares equal across dtype round-trips (2 vs 2.0 vs int64(2)).
    """
    if isinstance(value, (list, np.ndarray)):
        return tuple(hashable_value(v) for v in value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return hashable_value(float(value))
    if isinstance(value, float) and float(value).is_integer():
        return int(value)  # fold 2.0 / 2 so dtype round-trips compare equal
    return value

# Singleton instances, following Spark SQL's convention of exposing types
# both as classes and ready-made instances.
INTEGER = IntegerType()
LONG = LongType()
DOUBLE = DoubleType()
STRING = StringType()
BOOLEAN = BooleanType()
TIMESTAMP = TimestampType()

_NAME_TO_TYPE = {
    "int": INTEGER,
    "integer": INTEGER,
    "long": LONG,
    "bigint": LONG,
    "double": DOUBLE,
    "float": DOUBLE,
    "string": STRING,
    "boolean": BOOLEAN,
    "bool": BOOLEAN,
    "timestamp": TIMESTAMP,
}


def type_from_name(name: str) -> DataType:
    """Look up a type singleton from its SQL-ish name (``"string"``, ...)."""
    try:
        return _NAME_TO_TYPE[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown data type name: {name!r}") from None


def infer_type(value: object) -> DataType:
    """Infer the engine type of a single Python value."""
    if isinstance(value, (bool, np.bool_)):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        return LONG
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    raise TypeError(f"cannot infer engine type for value {value!r}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the widened type for a binary numeric operation.

    Raises TypeError when the two types cannot be combined.
    """
    if left == right:
        return left
    numeric = (left, right)
    if all(isinstance(t, NumericType) for t in numeric):
        if any(isinstance(t, (DoubleType, TimestampType)) for t in numeric):
            # timestamp +/- numeric stays a plain double unless both sides
            # are timestamps (difference of timestamps is a duration).
            return DOUBLE
        return LONG
    raise TypeError(f"incompatible types: {left} and {right}")


@dataclass(frozen=True)
class StructField:
    """A named, typed field in a schema."""

    name: str
    data_type: DataType
    nullable: bool = True

    def __repr__(self) -> str:
        return f"StructField({self.name!r}, {self.data_type!r})"


@dataclass(frozen=True)
class StructType:
    """An ordered collection of named fields; the schema of a relation."""

    fields: tuple = field(default_factory=tuple)

    def __init__(self, fields=()):
        normalized = []
        for f in fields:
            if isinstance(f, StructField):
                normalized.append(f)
            elif isinstance(f, tuple) and len(f) in (2, 3):
                name, dtype = f[0], f[1]
                if isinstance(dtype, str):
                    dtype = type_from_name(dtype)
                nullable = f[2] if len(f) == 3 else True
                normalized.append(StructField(name, dtype, nullable))
            else:
                raise TypeError(f"invalid field spec: {f!r}")
        object.__setattr__(self, "fields", tuple(normalized))

    @property
    def names(self) -> list:
        """Field names in schema order."""
        return [f.name for f in self.fields]

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def field(self, name: str) -> StructField:
        """Return the field with the given name, raising KeyError if absent."""
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"no field named {name!r} in schema {self.names}")

    def type_of(self, name: str) -> DataType:
        """Return the data type of the named field."""
        return self.field(name).data_type

    def add(self, name: str, data_type: DataType, nullable: bool = True) -> "StructType":
        """Return a new schema with one extra field appended."""
        if isinstance(data_type, str):
            data_type = type_from_name(data_type)
        return StructType(self.fields + (StructField(name, data_type, nullable),))

    def select(self, names) -> "StructType":
        """Return a new schema containing only the named fields, in order."""
        return StructType(tuple(self.field(n) for n in names))

    def merge(self, other: "StructType") -> "StructType":
        """Concatenate two schemas, raising on duplicate field names."""
        duplicates = set(self.names) & set(other.names)
        if duplicates:
            raise ValueError(f"duplicate field names when merging schemas: {sorted(duplicates)}")
        return StructType(self.fields + other.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}: {f.data_type.simple_name}" for f in self.fields)
        return f"StructType({inner})"


def schema_of(**named_types) -> StructType:
    """Convenience constructor: ``schema_of(a="long", b="string")``."""
    return StructType(tuple((name, dtype) for name, dtype in named_types.items()))
