"""Query analysis: resolution, validation and streaming support checks.

Mirrors §5.1 of the paper: the first planning stage resolves attributes and
types (here, by forcing every node's lazily computed schema) and then checks
that the query can be executed incrementally and that the user's chosen
output mode is valid for this specific query.
"""

from __future__ import annotations

from repro.sql import logical as L
from repro.sql.expressions import AnalysisError, WindowExpr
from repro.sql.types import WEIGHT_COLUMN

OUTPUT_MODES = ("append", "update", "complete", "retract")


def analyze(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Resolve and type-check every node in the plan.

    Returns the plan unchanged on success; raises
    :class:`~repro.sql.expressions.AnalysisError` on the first problem.
    """
    for node in plan.collect_nodes():
        node.schema  # forces resolution of every expression in the node
    _check_no_aggregate_under_filter_inputs(plan)
    return plan


def _check_no_aggregate_under_filter_inputs(plan: L.LogicalPlan) -> None:
    """Reject shapes the executor does not support, streaming or not."""
    for node in plan.collect_nodes(L.Sort):
        if not isinstance(node.child, (L.Aggregate, L.Sort, L.Limit)):
            # Sorting raw streams is rejected later (streaming check); for
            # batch we allow sorting anything, so only validate schema here.
            node.schema


def watermarked_columns(plan: L.LogicalPlan) -> dict:
    """Map of column name -> delay seconds for all watermarks in the plan."""
    marks = {}
    for node in plan.collect_nodes(L.WithWatermark):
        marks[node.column] = node.delay
    return marks


def _aggregate_is_event_time_keyed(agg: L.Aggregate) -> bool:
    """True when the aggregate's key includes a watermarked event-time.

    Append mode for aggregates is only allowed in this case: the engine can
    then guarantee a key is final once the watermark passes it (§5.1).
    """
    marks = watermarked_columns(agg.child)
    if not marks:
        return False
    if agg.window is not None:
        return bool(agg.window.time_expr.references() & set(marks))
    return any(g.references() & set(marks) for g in agg.plain_grouping)


class UnsupportedOperationError(AnalysisError):
    """A query shape or query/output-mode combination the incremental
    engine cannot run (§5.1)."""


def check_streaming_supported(plan: L.LogicalPlan, output_mode: str) -> None:
    """Validate a streaming query against §5.1/§5.2's supported set.

    Raises :class:`UnsupportedOperationError` when the query cannot be
    incrementalized or when the output mode is invalid for this query.
    """
    if output_mode not in OUTPUT_MODES:
        raise UnsupportedOperationError(
            f"unknown output mode {output_mode!r}; use one of {OUTPUT_MODES}"
        )
    if not plan.is_streaming:
        raise UnsupportedOperationError("plan has no streaming source")

    aggregates = [n for n in plan.collect_nodes(L.Aggregate) if n.is_streaming]
    if len(aggregates) > 1:
        raise UnsupportedOperationError(
            "streaming queries support at most one aggregation (§5.2)"
        )

    _check_sorts(plan, aggregates, output_mode)
    _check_limits(plan, output_mode)
    _check_joins(plan)
    _check_stateful(plan, output_mode)
    _check_weighted(plan, aggregates, output_mode)
    if output_mode != "retract":
        _check_aggregate_modes(plan, aggregates, output_mode)
    _check_windows_have_watermark_for_append(aggregates, output_mode)


def _check_sorts(plan, aggregates, output_mode: str) -> None:
    sorts = [n for n in plan.collect_nodes(L.Sort) if n.is_streaming]
    if not sorts:
        return
    if output_mode != "complete":
        raise UnsupportedOperationError(
            "sorting a streaming result is only supported in complete mode (§5.2)"
        )
    if not aggregates:
        raise UnsupportedOperationError(
            "sorting is only supported after an aggregation (§5.2)"
        )


def _check_limits(plan, output_mode: str) -> None:
    limits = [n for n in plan.collect_nodes(L.Limit) if n.is_streaming]
    if limits and output_mode != "complete":
        raise UnsupportedOperationError(
            "limit on a streaming query is only supported in complete mode"
        )


def _check_joins(plan) -> None:
    for join in plan.collect_nodes(L.Join):
        left_streaming = join.left.is_streaming
        right_streaming = join.right.is_streaming
        if not (left_streaming or right_streaming):
            continue
        if left_streaming and right_streaming:
            _check_stream_stream_join(join)
        else:
            # Stream-static join: outer side must be the stream, otherwise
            # the engine would have to re-emit static rows as the stream
            # grows, which is not incrementally maintainable.
            if join.how == "left_outer" and not left_streaming:
                raise UnsupportedOperationError(
                    "left_outer join requires the stream on the left side"
                )
            if join.how == "right_outer" and not right_streaming:
                raise UnsupportedOperationError(
                    "right_outer join requires the stream on the right side"
                )


def _check_stream_stream_join(join: L.Join) -> None:
    """§5.2: outer stream-stream joins need a watermarked time bound.

    Without a ``within`` bound, an inner join buffers both sides forever
    (allowed, like Spark, but state is unbounded); an outer join could
    never finalize unmatched rows, so it is rejected.  With a bound, both
    time columns must be watermarked so rows become provably unmatchable.
    """
    if join.within is None:
        if join.how != "inner":
            raise UnsupportedOperationError(
                "outer stream-stream joins require a within=(left_time, "
                "right_time, max_skew) bound on watermarked columns: the "
                "engine can otherwise never know a row will stay "
                "unmatched (§5.2)"
            )
        return
    left_col, right_col, _skew = join.within
    left_marks = watermarked_columns(join.left)
    right_marks = watermarked_columns(join.right)
    if left_col not in left_marks or right_col not in right_marks:
        raise UnsupportedOperationError(
            "the within time columns of a stream-stream join must carry "
            "watermarks (with_watermark) on their respective sides "
            "(§4.3.1, §5.2)"
        )


def plan_is_weighted(plan: L.LogicalPlan) -> bool:
    """True when any streaming scan feeds Z-set (weighted) deltas.

    Weighted-ness is a property of the *sources*: a CDC-style stream
    whose scan schema carries ``__weight__`` makes the whole plan a
    retraction pipeline, regardless of intermediate projections (the
    incrementalizer threads the weight column through those).
    """
    return any(
        node.is_streaming and WEIGHT_COLUMN in node.schema
        for node in plan.collect_nodes(L.Scan)
    )


def _check_weighted(plan, aggregates, output_mode: str) -> None:
    """Validate the weighted (retraction) subset of the operator zoo.

    Weighted deltas flow through stateless maps, retractable aggregates,
    dedup and inner joins; everything whose incremental maintenance
    cannot undo an emitted row is rejected up front.
    """
    weighted = plan_is_weighted(plan)
    if output_mode == "retract" and not weighted:
        raise UnsupportedOperationError(
            "retract output mode requires a weighted (CDC) source whose "
            f"schema carries {WEIGHT_COLUMN!r}; append-only streams use "
            "append/update/complete"
        )
    if not weighted:
        return
    if output_mode not in ("retract", "complete"):
        raise UnsupportedOperationError(
            f"a weighted (retraction) stream supports output modes "
            f"'retract' and 'complete' (with aggregation), not {output_mode!r}: "
            "append/update sinks cannot undo delivered rows"
        )
    for agg in aggregates:
        if agg.window is not None:
            raise UnsupportedOperationError(
                "windowed aggregation over a weighted stream is not "
                "supported; group by plain columns"
            )
        for g in agg.grouping:
            if WEIGHT_COLUMN in g.references():
                raise UnsupportedOperationError(
                    f"cannot group by the reserved {WEIGHT_COLUMN!r} column"
                )
        for fn, name in agg.aggregates:
            if not fn.supports_retract:
                raise UnsupportedOperationError(
                    f"aggregate {name!r} ({fn.func_name}) cannot process "
                    "retractions; only invertible aggregates "
                    "(count/sum/avg) run over weighted streams"
                )
            if WEIGHT_COLUMN in fn.references():
                raise UnsupportedOperationError(
                    f"aggregates may not read the reserved "
                    f"{WEIGHT_COLUMN!r} column"
                )
    for node in plan.collect_nodes(L.Deduplicate):
        if node.is_streaming and WEIGHT_COLUMN in node.subset:
            raise UnsupportedOperationError(
                f"cannot deduplicate by the reserved {WEIGHT_COLUMN!r} column"
            )
    for join in plan.collect_nodes(L.Join):
        if not (join.left.is_streaming and join.right.is_streaming):
            continue
        left_weighted = WEIGHT_COLUMN in join.left.schema
        right_weighted = WEIGHT_COLUMN in join.right.schema
        if not (left_weighted or right_weighted):
            continue
        if join.how != "inner":
            raise UnsupportedOperationError(
                "outer stream-stream joins over weighted streams are not "
                "supported: null-padded rows cannot be retracted soundly"
            )
        if join.within is not None:
            raise UnsupportedOperationError(
                "time-bounded (within=...) stream-stream joins over "
                "weighted streams are not supported: a retraction may "
                "arrive after its row was evicted"
            )
    for node in plan.collect_nodes(L.MapGroupsWithState):
        if node.is_streaming:
            raise UnsupportedOperationError(
                "map_groups_with_state over a weighted stream is not "
                "supported: user state transitions cannot be undone"
            )
    for node in plan.collect_nodes((L.Sort, L.Limit)):
        if node.is_streaming:
            raise UnsupportedOperationError(
                "sort/limit over a weighted stream is not supported"
            )


def _check_stateful(plan, output_mode: str) -> None:
    for node in plan.collect_nodes(L.MapGroupsWithState):
        if not node.is_streaming:
            continue
        if not node.flat and output_mode != "update":
            raise UnsupportedOperationError(
                "map_groups_with_state requires update output mode"
            )
        if node.flat and output_mode == "complete":
            raise UnsupportedOperationError(
                "flat_map_groups_with_state does not support complete mode"
            )


def _check_aggregate_modes(plan, aggregates, output_mode: str) -> None:
    if output_mode == "complete":
        if not aggregates:
            raise UnsupportedOperationError(
                "complete mode requires an aggregation: the engine only "
                "retains state proportional to the result size (§5.1)"
            )
        return
    if output_mode == "append":
        for agg in aggregates:
            if not _aggregate_is_event_time_keyed(agg):
                raise UnsupportedOperationError(
                    "append mode with aggregation requires grouping by a "
                    "watermarked event-time column: the engine can never "
                    "know it has stopped receiving records for a plain key "
                    "(§4.2, §5.1)"
                )


def _check_windows_have_watermark_for_append(aggregates, output_mode: str) -> None:
    if output_mode != "append":
        return
    for agg in aggregates:
        if agg.window is not None and not _aggregate_is_event_time_keyed(agg):
            raise UnsupportedOperationError(
                "windowed aggregation in append mode requires with_watermark "
                "on the window's time column (§4.3.1)"
            )


def find_window(plan: L.LogicalPlan) -> WindowExpr:
    """Return the single window expression in the plan, or None."""
    for agg in plan.collect_nodes(L.Aggregate):
        if agg.window is not None:
            return agg.window
    return None
