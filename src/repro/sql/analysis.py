"""Query analysis: resolution, validation and streaming support checks.

Mirrors §5.1 of the paper: the first planning stage resolves attributes and
types (here, by forcing every node's lazily computed schema) and then checks
that the query can be executed incrementally and that the user's chosen
output mode is valid for this specific query.
"""

from __future__ import annotations

from repro.sql import logical as L
from repro.sql.expressions import AnalysisError, WindowExpr

OUTPUT_MODES = ("append", "update", "complete")


def analyze(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Resolve and type-check every node in the plan.

    Returns the plan unchanged on success; raises
    :class:`~repro.sql.expressions.AnalysisError` on the first problem.
    """
    for node in plan.collect_nodes():
        node.schema  # forces resolution of every expression in the node
    _check_no_aggregate_under_filter_inputs(plan)
    return plan


def _check_no_aggregate_under_filter_inputs(plan: L.LogicalPlan) -> None:
    """Reject shapes the executor does not support, streaming or not."""
    for node in plan.collect_nodes(L.Sort):
        if not isinstance(node.child, (L.Aggregate, L.Sort, L.Limit)):
            # Sorting raw streams is rejected later (streaming check); for
            # batch we allow sorting anything, so only validate schema here.
            node.schema


def watermarked_columns(plan: L.LogicalPlan) -> dict:
    """Map of column name -> delay seconds for all watermarks in the plan."""
    marks = {}
    for node in plan.collect_nodes(L.WithWatermark):
        marks[node.column] = node.delay
    return marks


def _aggregate_is_event_time_keyed(agg: L.Aggregate) -> bool:
    """True when the aggregate's key includes a watermarked event-time.

    Append mode for aggregates is only allowed in this case: the engine can
    then guarantee a key is final once the watermark passes it (§5.1).
    """
    marks = watermarked_columns(agg.child)
    if not marks:
        return False
    if agg.window is not None:
        return bool(agg.window.time_expr.references() & set(marks))
    return any(g.references() & set(marks) for g in agg.plain_grouping)


class UnsupportedOperationError(AnalysisError):
    """A query shape or query/output-mode combination the incremental
    engine cannot run (§5.1)."""


def check_streaming_supported(plan: L.LogicalPlan, output_mode: str) -> None:
    """Validate a streaming query against §5.1/§5.2's supported set.

    Raises :class:`UnsupportedOperationError` when the query cannot be
    incrementalized or when the output mode is invalid for this query.
    """
    if output_mode not in OUTPUT_MODES:
        raise UnsupportedOperationError(
            f"unknown output mode {output_mode!r}; use one of {OUTPUT_MODES}"
        )
    if not plan.is_streaming:
        raise UnsupportedOperationError("plan has no streaming source")

    aggregates = [n for n in plan.collect_nodes(L.Aggregate) if n.is_streaming]
    if len(aggregates) > 1:
        raise UnsupportedOperationError(
            "streaming queries support at most one aggregation (§5.2)"
        )

    _check_sorts(plan, aggregates, output_mode)
    _check_limits(plan, output_mode)
    _check_joins(plan)
    _check_stateful(plan, output_mode)
    _check_aggregate_modes(plan, aggregates, output_mode)
    _check_windows_have_watermark_for_append(aggregates, output_mode)


def _check_sorts(plan, aggregates, output_mode: str) -> None:
    sorts = [n for n in plan.collect_nodes(L.Sort) if n.is_streaming]
    if not sorts:
        return
    if output_mode != "complete":
        raise UnsupportedOperationError(
            "sorting a streaming result is only supported in complete mode (§5.2)"
        )
    if not aggregates:
        raise UnsupportedOperationError(
            "sorting is only supported after an aggregation (§5.2)"
        )


def _check_limits(plan, output_mode: str) -> None:
    limits = [n for n in plan.collect_nodes(L.Limit) if n.is_streaming]
    if limits and output_mode != "complete":
        raise UnsupportedOperationError(
            "limit on a streaming query is only supported in complete mode"
        )


def _check_joins(plan) -> None:
    for join in plan.collect_nodes(L.Join):
        left_streaming = join.left.is_streaming
        right_streaming = join.right.is_streaming
        if not (left_streaming or right_streaming):
            continue
        if left_streaming and right_streaming:
            _check_stream_stream_join(join)
        else:
            # Stream-static join: outer side must be the stream, otherwise
            # the engine would have to re-emit static rows as the stream
            # grows, which is not incrementally maintainable.
            if join.how == "left_outer" and not left_streaming:
                raise UnsupportedOperationError(
                    "left_outer join requires the stream on the left side"
                )
            if join.how == "right_outer" and not right_streaming:
                raise UnsupportedOperationError(
                    "right_outer join requires the stream on the right side"
                )


def _check_stream_stream_join(join: L.Join) -> None:
    """§5.2: outer stream-stream joins need a watermarked time bound.

    Without a ``within`` bound, an inner join buffers both sides forever
    (allowed, like Spark, but state is unbounded); an outer join could
    never finalize unmatched rows, so it is rejected.  With a bound, both
    time columns must be watermarked so rows become provably unmatchable.
    """
    if join.within is None:
        if join.how != "inner":
            raise UnsupportedOperationError(
                "outer stream-stream joins require a within=(left_time, "
                "right_time, max_skew) bound on watermarked columns: the "
                "engine can otherwise never know a row will stay "
                "unmatched (§5.2)"
            )
        return
    left_col, right_col, _skew = join.within
    left_marks = watermarked_columns(join.left)
    right_marks = watermarked_columns(join.right)
    if left_col not in left_marks or right_col not in right_marks:
        raise UnsupportedOperationError(
            "the within time columns of a stream-stream join must carry "
            "watermarks (with_watermark) on their respective sides "
            "(§4.3.1, §5.2)"
        )


def _check_stateful(plan, output_mode: str) -> None:
    for node in plan.collect_nodes(L.MapGroupsWithState):
        if not node.is_streaming:
            continue
        if not node.flat and output_mode != "update":
            raise UnsupportedOperationError(
                "map_groups_with_state requires update output mode"
            )
        if node.flat and output_mode == "complete":
            raise UnsupportedOperationError(
                "flat_map_groups_with_state does not support complete mode"
            )


def _check_aggregate_modes(plan, aggregates, output_mode: str) -> None:
    if output_mode == "complete":
        if not aggregates:
            raise UnsupportedOperationError(
                "complete mode requires an aggregation: the engine only "
                "retains state proportional to the result size (§5.1)"
            )
        return
    if output_mode == "append":
        for agg in aggregates:
            if not _aggregate_is_event_time_keyed(agg):
                raise UnsupportedOperationError(
                    "append mode with aggregation requires grouping by a "
                    "watermarked event-time column: the engine can never "
                    "know it has stopped receiving records for a plain key "
                    "(§4.2, §5.1)"
                )


def _check_windows_have_watermark_for_append(aggregates, output_mode: str) -> None:
    if output_mode != "append":
        return
    for agg in aggregates:
        if agg.window is not None and not _aggregate_is_event_time_keyed(agg):
            raise UnsupportedOperationError(
                "windowed aggregation in append mode requires with_watermark "
                "on the window's time column (§4.3.1)"
            )


def find_window(plan: L.LogicalPlan) -> WindowExpr:
    """Return the single window expression in the plan, or None."""
    for agg in plan.collect_nodes(L.Aggregate):
        if agg.window is not None:
            return agg.window
    return None
