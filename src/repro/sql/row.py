"""Row representation used at API boundaries and in the per-record engines.

Inside the vectorized engine data lives in :class:`repro.sql.batch.RecordBatch`
columnar form; rows only materialize when users collect results, when sources
ingest external records, or in the per-record baseline engines
(:mod:`repro.baselines`) that deliberately avoid vectorization.
"""

from __future__ import annotations


class Row(dict):
    """An ordered mapping from column name to value.

    ``Row`` is a thin dict subclass: it keeps dict performance (important in
    the per-record baselines) while adding attribute access and a stable
    repr.  Rows compare equal to plain dicts with the same contents.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.items())
        return f"Row({inner})"


def rows_equal_unordered(left, right) -> bool:
    """Compare two collections of rows ignoring order.

    Useful in tests: streaming results arrive in nondeterministic order but
    must match a batch-computed reference set.
    """

    def key(row):
        return tuple(sorted((k, repr(v)) for k, v in row.items()))

    return sorted(map(key, left)) == sorted(map(key, right))
