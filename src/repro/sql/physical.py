"""Batch physical execution of analyzed logical plans.

This is the "run the same query as a batch job" half of the paper's hybrid
story (§2.2, §7.3): the streaming engine reuses exactly these operators for
each epoch's new data, swapping the aggregate for its stateful incremental
counterpart.

``execute(plan, overrides)`` evaluates a plan to a single
:class:`~repro.sql.batch.RecordBatch`.  ``overrides`` lets callers inject
data for specific scan nodes — the streaming engine uses it to run the
epoch's new input through the plan.

Since the whole-plan compiler (:mod:`repro.sql.plancompiler`, §5.3),
``execute`` compiles each plan once (memoized by plan identity) and runs
the compiled pipeline; repeated executions of the same plan object pay no
plan-walk or expression-compilation cost.  The pre-compiler recursive
interpreter survives as :func:`execute_interpreted` — it is the
per-batch-compilation baseline arm in the ablation benchmark and the
reference implementation the compiled path is equivalence-tested against.
The shared operator kernels (:func:`join_batches`, :func:`sort_batch`,
:func:`dedup_batch`, :func:`run_aggregate`, :func:`map_groups_batch`) are
used by both paths, so the two differ only in *when* dispatch happens.
"""

from __future__ import annotations

import numpy as np

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.batch import RecordBatch
from repro.sql.codegen import compile_expression
from repro.sql.grouping import encode_groups
from repro.sql.joins import assemble_join_output, join_indices


def execute(plan: L.LogicalPlan, overrides: dict = None) -> RecordBatch:
    """Evaluate a logical plan, returning one result batch.

    ``overrides`` maps a :class:`~repro.sql.logical.Scan` node (by object
    identity) to a RecordBatch to use as its data.  The plan is compiled
    on first use and the compiled pipeline cached, so calling ``execute``
    repeatedly on one plan object (as the streaming engine does per
    epoch) walks and compiles it only once.
    """
    from repro.sql.plancompiler import compiled_for

    return compiled_for(plan)(overrides or {})


def execute_interpreted(plan: L.LogicalPlan, overrides: dict = None) -> RecordBatch:
    """Evaluate a plan by recursive descent, compiling expressions per batch.

    This is the pre-whole-plan-compilation execution strategy, retained as
    the baseline for the codegen ablation and as the independent reference
    for compiled-vs-interpreted equivalence tests.
    """
    overrides = overrides or {}
    return _execute(plan, overrides)


def _execute(plan: L.LogicalPlan, overrides: dict) -> RecordBatch:
    if isinstance(plan, L.Scan):
        return _execute_scan(plan, overrides)
    if isinstance(plan, L.Project):
        return _execute_project(plan, overrides)
    if isinstance(plan, L.Filter):
        return _execute_filter(plan, overrides)
    if isinstance(plan, L.Aggregate):
        return _execute_aggregate(plan, overrides)
    if isinstance(plan, L.Join):
        left = _execute(plan.left, overrides)
        right = _execute(plan.right, overrides)
        return join_batches(left, right, plan)
    if isinstance(plan, L.Sort):
        return sort_batch(_execute(plan.child, overrides), plan.orders)
    if isinstance(plan, L.Limit):
        return _execute(plan.child, overrides).slice(0, plan.n)
    if isinstance(plan, L.Deduplicate):
        return dedup_batch(_execute(plan.child, overrides), plan.subset)
    if isinstance(plan, L.Union):
        left = _execute(plan.left, overrides)
        right = _execute(plan.right, overrides)
        return RecordBatch.concat([left, right.select(left.schema.names)], plan.schema)
    if isinstance(plan, L.WithWatermark):
        # Watermarks only affect streaming state management; in batch
        # execution they are a no-op passthrough (§4.3.1).
        return _execute(plan.child, overrides)
    if isinstance(plan, L.MapGroupsWithState):
        return map_groups_batch(plan, _execute(plan.child, overrides))
    raise NotImplementedError(f"no batch executor for {type(plan).__name__}")


def _execute_scan(plan: L.Scan, overrides: dict) -> RecordBatch:
    if plan in overrides or id(plan) in overrides:
        return overrides.get(plan, overrides.get(id(plan)))
    provider = plan.provider
    if provider is None:
        raise RuntimeError(f"scan {plan.name!r} has no data (missing override?)")
    batches = provider.read_batches()
    return RecordBatch.concat(list(batches), plan.schema)


def _execute_project(plan: L.Project, overrides: dict) -> RecordBatch:
    child = _execute(plan.child, overrides)
    child_schema = plan.child.schema
    out_schema = plan.schema
    columns = {}
    for expr, field in zip(plan.exprs, out_schema):
        fn = compile_expression(expr, child_schema)
        columns[field.name] = _coerce(fn(child), field.data_type)
    return RecordBatch(columns, out_schema)


def _coerce(array: np.ndarray, data_type) -> np.ndarray:
    target = data_type.numpy_dtype
    if target is object or array.dtype == object:
        return array
    if array.dtype != target:
        return array.astype(target)
    return array


def _execute_filter(plan: L.Filter, overrides: dict) -> RecordBatch:
    child = _execute(plan.child, overrides)
    mask = compile_expression(plan.condition, plan.child.schema)(child)
    return child.filter(mask)


def join_batches(left: RecordBatch, right: RecordBatch, plan: L.Join) -> RecordBatch:
    """Join two batches per a :class:`~repro.sql.logical.Join` node."""
    from repro.sql.joins import apply_time_bound

    indices = join_indices(left, right, plan.on, plan.how)
    if plan.within is not None:
        indices = apply_time_bound(left, right, plan.how, plan.within, *indices)
    return assemble_join_output(
        left, right, plan.on, plan.how, plan.schema, *indices
    )


def sort_batch(batch: RecordBatch, orders) -> RecordBatch:
    """Stable lexicographic sort of a batch by ``[(name, ascending), ...]``."""
    if batch.num_rows == 0:
        return batch
    # Lexicographic sort: least-significant key first for np.lexsort.
    keys = []
    for name, ascending in reversed(orders):
        col = batch.columns[name]
        if col.dtype == object:
            # Rank-encode object columns so lexsort can handle them.
            _, inverse = np.unique(np.array([str(v) for v in col]), return_inverse=True)
            col = inverse
        keys.append(col if ascending else _descending_key(col))
    order = np.lexsort(keys)
    return batch.take(order)


def _descending_key(col: np.ndarray) -> np.ndarray:
    if col.dtype.kind in "iu":
        # Rank-based key: negating the value itself overflows for
        # np.int64.min and for uint64 values above 2**63.  Ranks are
        # bounded by the row count, so their negation is always safe
        # and lexsort only needs relative order anyway.
        _, inverse = np.unique(col, return_inverse=True)
        return -inverse.astype(np.int64)
    return -col.astype(np.float64)


def dedup_batch(batch: RecordBatch, subset) -> RecordBatch:
    """Drop duplicate rows by ``subset`` keys, keeping first occurrences."""
    if batch.num_rows == 0:
        return batch
    codes, _uniques = encode_groups([batch.columns[n] for n in subset])
    # encode_groups returns dense codes, so return_index yields the first
    # occurrence of every key; sorting restores arrival order.
    _, first_idx = np.unique(codes, return_index=True)
    return batch.take(np.sort(first_idx))


def group_rows_expanded(plan: L.Aggregate, batch: RecordBatch):
    """Window-expand a batch and encode group codes.

    Returns ``(expanded_batch_or_None, codes, unique_keys)`` where unique
    keys are tuples ordered (plain grouping values..., window_start).
    Shared with the streaming stateful aggregate.
    """
    child_schema = plan.child.schema
    key_arrays = []
    if plan.window is not None:
        row_idx, starts = plan.window.assign_batch(batch)
        batch = batch.take(row_idx)
        for g in plan.plain_grouping:
            key_arrays.append(compile_expression(g, child_schema)(batch))
        key_arrays.append(starts)
    else:
        for g in plan.plain_grouping:
            key_arrays.append(compile_expression(g, child_schema)(batch))
    codes, uniques = encode_groups(key_arrays)
    return batch, codes, uniques


def aggregate_result_batch(plan: L.Aggregate, keys, buffers) -> RecordBatch:
    """Build the aggregate output batch from final (key, buffers) pairs.

    ``keys`` is a list of key tuples (window start last when windowed);
    ``buffers`` is a parallel list of per-aggregate buffer lists.
    """
    schema = plan.schema
    num_plain = len(plan.plain_grouping)
    columns = {}
    for i, g in enumerate(plan.plain_grouping):
        field = schema.fields[i]
        values = [k[i] for k in keys]
        columns[field.name] = _column_from_values(values, field.data_type)
    if plan.window is not None:
        starts = np.array([k[num_plain] for k in keys], dtype=np.float64)
        columns["window_start"] = starts
        columns["window_end"] = starts + plan.window.duration
    agg_offset = num_plain + (2 if plan.window is not None else 0)
    for j, (fn, name) in enumerate(plan.aggregates):
        field = schema.fields[agg_offset + j]
        values = [fn.finish(b[j]) for b in buffers]
        columns[name] = _column_from_values(values, field.data_type)
    return RecordBatch(columns, schema)


def _column_from_values(values, data_type) -> np.ndarray:
    if data_type.numpy_dtype is object:
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    if any(v is None for v in values):
        return np.array(
            [np.nan if v is None else v for v in values], dtype=np.float64
        )
    return np.asarray(values, dtype=data_type.numpy_dtype)


def run_aggregate(plan: L.Aggregate, expanded: RecordBatch, codes, uniques) -> RecordBatch:
    """Finish a batch aggregate from pre-encoded groups.

    ``expanded``/``codes``/``uniques`` come from
    :func:`group_rows_expanded` (or its compiled counterpart).
    """
    buffers = []
    num_groups = len(uniques)
    partials_per_agg = [
        fn.batch_partials(expanded, codes, num_groups) for fn, _name in plan.aggregates
    ]
    for g in range(num_groups):
        buffers.append([partials[g] for partials in partials_per_agg])
    # Merge with fresh init buffers so finish() semantics match streaming.
    merged = []
    for buf in buffers:
        merged.append([
            fn.merge(fn.init(), partial)
            for (fn, _name), partial in zip(plan.aggregates, buf)
        ])
    return aggregate_result_batch(plan, uniques, merged)


def _execute_aggregate(plan: L.Aggregate, overrides: dict) -> RecordBatch:
    child = _execute(plan.child, overrides)
    expanded, codes, uniques = group_rows_expanded(plan, child)
    return run_aggregate(plan, expanded, codes, uniques)


def map_groups_batch(plan: L.MapGroupsWithState, child: RecordBatch) -> RecordBatch:
    """Batch-mode stateful operator: the update function runs once per key
    with all of its rows and fresh state (§4.3.2)."""
    from repro.streaming.stateful import GroupState, normalize_func_output

    key_arrays = [child.columns[n] for n in plan.key_columns]
    out_rows = []
    if child.num_rows:
        codes, uniques = encode_groups(key_arrays)
        rows = child.to_rows()
        grouped = {}
        for code, row in zip(codes.tolist(), rows):
            grouped.setdefault(code, []).append(row)
        for code, group_rows in grouped.items():
            key = uniques[code]
            key_value = key[0] if len(plan.key_columns) == 1 else key
            state = GroupState(watermark=None, processing_time=None)
            result = plan.func(key_value, iter(group_rows), state)
            out_rows.extend(
                normalize_func_output(result, plan.flat, plan.key_columns, key)
            )
    return RecordBatch.from_rows(out_rows, plan.schema)
