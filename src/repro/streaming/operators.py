"""Incremental physical operators (§5.2, §6.1).

The incrementalizer maps a static logical plan to a tree of these
operators.  Each epoch, ``process(ctx)`` consumes the epoch's *delta*
from its children and returns this operator's delta — time proportional
to new data, never to the whole stream.  Stateful operators keep their
state in :class:`~repro.streaming.state.OperatorStateHandle` so the
engine can checkpoint and restore it transparently to user code.

Internally each operator has an output behaviour (append-like deltas vs
updates vs complete results) tracked by the engine — the intra-DAG modes
the paper says users never specify by hand (§5.2).
"""

from __future__ import annotations

import functools
import time

import numpy as np

from repro import observability
from repro.observability import metrics, tracing
from repro.sql import codegen
from repro.sql import logical as L
from repro.sql import plancompiler
from repro.sql.batch import (
    RecordBatch,
    hash_partition,
    partition_by_assignment,
    shard_assignments,
)
from repro.sql.grouping import encode_groups
from repro.sql.joins import assemble_join_output, join_indices
from repro.sql.physical import aggregate_result_batch, execute
from repro.sql.types import StructType
from repro.streaming.state import encode_key
from repro.streaming.stateful import GroupState, normalize_func_output
from repro.streaming.zset import (
    WEIGHT_COLUMN,
    attach_weights,
    split_by_sign,
    thread_weights,
    weighted_schema,
)


class EpochContext:
    """Everything an operator may read while processing one epoch."""

    def __init__(self, epoch_id: int, inputs: dict, watermarks, processing_time: float,
                 output_mode: str, output_enabled: bool = True, is_first_epoch: bool = False,
                 scheduler=None):
        self.epoch_id = epoch_id
        #: source name -> RecordBatch of this epoch's new records.
        self.inputs = inputs
        #: WatermarkTracker frozen at epoch start (observe() still records).
        self.watermarks = watermarks
        self.processing_time = processing_time
        self.output_mode = output_mode
        #: False while replaying epochs purely to rebuild state (§6.1).
        self.output_enabled = output_enabled
        self.is_first_epoch = is_first_epoch
        #: Optional cluster TaskScheduler: sharded operators submit one
        #: task per (operator, shard) to it (§6.2); None runs them inline.
        self.scheduler = scheduler
        #: Filled by operators for progress reporting (§7.4).
        self.metrics = {"rows_processed": 0, "late_rows_dropped": 0}
        #: Operator label -> {"rows_out", "seconds", "calls"}, filled by
        #: the instrumented process wrappers when observability is on.
        self.op_metrics = {}


def _traced_shard_fn(label, epoch: int, shard: int, fn):
    """Wrap one shard task so its execution (inline or on a scheduler
    worker thread) records a ``task:<op>:shard<i>`` span."""
    op = label[0] if isinstance(label, tuple) else label
    name = f"task:{op}:shard{shard}"

    def run():
        with tracing.trace_span(name, epoch=epoch, shard=shard):
            return fn()

    return run


def run_shard_tasks(ctx: EpochContext, label, fns) -> list:
    """Run one zero-arg callable per shard; results in shard order.

    With a scheduler on the context, each non-empty shard becomes one
    scheduler task — the partitioned epoch execution of §6.2, with the
    scheduler's retry and speculation applying per shard.  Tasks must be
    *pure*: they read immutable pre-epoch state and return deferred
    writes, so a retried or speculated attempt reproduces the same
    result.  ``fns[i] is None`` marks an empty shard (skipped).  Without
    a scheduler (or with one runnable shard) the callables run inline,
    which keeps output bit-identical between the two paths.
    """
    if tracing.active() is not None:
        fns = [
            _traced_shard_fn(label, ctx.epoch_id, i, fn)
            if fn is not None else None
            for i, fn in enumerate(fns)
        ]
    runnable = [(i, fn) for i, fn in enumerate(fns) if fn is not None]
    if ctx.scheduler is None or len(runnable) <= 1:
        return [fn() if fn is not None else None for fn in fns]
    from repro.cluster.scheduler import Task

    tasks = [
        Task((label, ctx.epoch_id, i), fn) for i, fn in runnable
    ]
    results = ctx.scheduler.run_stage(tasks)
    out = [None] * len(fns)
    for i, _fn in runnable:
        out[i] = results[(label, ctx.epoch_id, i)]
    return out


def run_op_shard_tasks(ctx: EpochContext, label, op, method: str,
                       payloads) -> list:
    """Run ``op.<method>(*payloads[i])`` per shard; results in shard order.

    The picklable twin of :func:`run_shard_tasks`: shard work is named by
    ``(operator, method, args)`` instead of a closure, so a
    process-backed scheduler can ship it to a worker that already holds
    the operator (forked plan) and the shard's state replica.  With a
    process pool on the scheduler, tasks route stickily to each shard's
    owning worker; otherwise (thread executor, or a single runnable
    shard) the calls run through ``run_shard_tasks`` unchanged — output
    is bit-identical either way.  ``payloads[i] is None`` marks an empty
    shard.
    """
    scheduler = ctx.scheduler
    pool = getattr(scheduler, "process_pool", None) if scheduler else None
    if pool is not None and pool.knows(op):
        runnable = sum(1 for p in payloads if p is not None)
        if runnable > 1:
            return pool.run_op_stage(ctx, label, op, method, payloads)
    bound = getattr(op, method)
    fns = [
        (lambda args=args: bound(*args)) if args is not None else None
        for args in payloads
    ]
    return run_shard_tasks(ctx, label, fns)


def _instrumented_process(fn, label: str):
    """Wrap an operator's ``process`` with a ``stage:<Op>`` span and
    per-epoch rows/seconds bookkeeping (§7.4).

    Disabled observability costs one extra call frame + one branch per
    operator per epoch (process runs once per operator per epoch, never
    per row).  Enabled, the recorded seconds are *inclusive* of child
    operators — matching the nested-span semantics of the trace view.
    """
    span_name = f"stage:{label}"
    rows_metric = f"op.{label}.rows_out"

    @functools.wraps(fn)
    def process(self, ctx):
        if not observability.active():
            return fn(self, ctx)
        started = time.perf_counter()
        with tracing.trace_span(span_name, epoch=ctx.epoch_id):
            out = fn(self, ctx)
        seconds = time.perf_counter() - started
        rows = out.num_rows if out is not None else 0
        metrics.count(rows_metric, rows)
        entry = ctx.op_metrics.get(label)
        if entry is None:
            ctx.op_metrics[label] = {
                "rows_out": rows, "seconds": seconds, "calls": 1,
            }
        else:
            entry["rows_out"] += rows
            entry["seconds"] += seconds
            entry["calls"] += 1
        return out

    process._instrumented = True
    return process


class IncrementalOp:
    """Base class for incremental operators."""

    #: Output schema of this operator's deltas.
    output_schema: StructType = None
    #: True when the operator keeps cross-epoch state.
    stateful = False
    #: True when this operator's shard tasks only ever read state keys
    #: of their own task partition — i.e. its task partitioning uses
    #: exactly the state key, under the same stable hash the state
    #: handle routes shards with.  The process executor then ships each
    #: worker only the sync deltas of shards it owns instead of
    #: broadcasting full replicas.
    state_aligned = False

    def __init_subclass__(cls, **kwargs):
        """Every subclass that defines ``process`` gets it wrapped with
        stage-span tracing and rows-out metrics — one choke point for
        the whole operator zoo, on or off with the observability layer."""
        super().__init_subclass__(**kwargs)
        fn = cls.__dict__.get("process")
        if fn is not None and not getattr(fn, "_instrumented", False):
            cls.process = _instrumented_process(fn, cls.__name__)

    def process(self, ctx: EpochContext) -> RecordBatch:
        """Consume this epoch's input deltas; return this op's delta."""
        raise NotImplementedError

    def has_pending_timeout(self, processing_time: float) -> bool:
        """True if the operator needs an epoch even without new data."""
        return False

    def child_ops(self) -> list:
        """Child operators, for plan rendering and traversal."""
        found = []
        for attr in ("child", "left", "right", "stream", "static"):
            op = getattr(self, attr, None)
            if isinstance(op, IncrementalOp):
                found.append(op)
        return found

    def state_handles(self) -> list:
        """State handles whose shards this operator's *shard tasks* read.

        The process executor replicates exactly these to its workers
        (state-sync journaling); operators whose stateful work never
        leaves the driver (``MapGroupsWithStateOp``) return none.
        """
        return []

    def describe(self) -> str:
        """One-line description for ``explain``."""
        label = type(self).__name__
        if self.stateful:
            label += " [stateful]"
        return label

    def explain_string(self, indent: int = 0) -> str:
        """Readable tree rendering of the incremental plan (the physical
        operator DAG of §5.2, which users never write by hand)."""
        lines = ["  " * indent + ("+- " if indent else "") + self.describe()]
        for child in self.child_ops():
            lines.append(child.explain_string(indent + 1))
        return "\n".join(lines)

    def _empty(self) -> RecordBatch:
        return RecordBatch.empty(self.output_schema)


def make_placeholder(schema: StructType) -> L.Scan:
    """A scan node standing for "this operator's child output"; stateless
    operators execute their logical node against it via the batch
    executor with an override."""
    return L.Scan(schema, None, False, name="<child>")


class StreamScanOp(IncrementalOp):
    """Leaf: yields the epoch's new records from one source."""

    def __init__(self, source_name: str, schema: StructType):
        self.source_name = source_name
        self.output_schema = schema

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = ctx.inputs.get(self.source_name)
        if batch is None:
            return self._empty()
        ctx.metrics["rows_processed"] += batch.num_rows
        return batch

    def describe(self) -> str:
        return f"StreamScan [{self.source_name}]"


class StaticOp(IncrementalOp):
    """Leaf: a batch (non-streaming) subplan, materialized once.

    Used for the static side of stream-static joins and unions: "compute
    a static table ... and join it with a stream" (§3).
    """

    def __init__(self, plan: L.LogicalPlan):
        self._plan = plan
        self.output_schema = plan.schema
        self._cached = None

    def materialize(self) -> RecordBatch:
        """The static relation (computed on first access)."""
        if self._cached is None:
            self._cached = execute(self._plan)
        return self._cached

    def process(self, ctx: EpochContext) -> RecordBatch:
        return self.materialize()


class StatelessOp(IncrementalOp):
    """A maximal chain of Project/Filter nodes, applied to each delta.

    These operators are trivially incremental — f(old ∪ new) =
    f(old) ∪ f(new) for per-row transformations.  The incrementalizer
    hands one ``StatelessOp`` the *whole* adjacent stateless chain, which
    is compiled here once at construction into a fused pipeline
    (:mod:`repro.sql.plancompiler`, §5.3); each epoch then runs only the
    compiled kernels over the delta, with no plan walk or expression
    compilation.
    """

    #: Minimum rows before a delta is split into parallel slices; below
    #: this, task overhead exceeds the kernels' GIL-released compute.
    MIN_PARALLEL_ROWS = 8192

    def __init__(self, node: L.LogicalPlan, child: IncrementalOp,
                 num_shards: int = 1):
        self._placeholder = make_placeholder(child.output_schema)
        self._node = self._graft(node)
        if WEIGHT_COLUMN in child.output_schema:
            # The physical child may carry a weight column the logical
            # chain does not know about (e.g. projections above a
            # retract-mode aggregate): re-thread it so the multiplicity
            # survives this stateless segment too.
            self._node = thread_weights(self._node)
        self.output_schema = self._node.schema
        self.child = child
        self.num_shards = max(1, num_shards)
        self._compiled = plancompiler.compile_plan(self._node)

    def _graft(self, node: L.LogicalPlan) -> L.LogicalPlan:
        """Rebuild the stateless chain with the placeholder scan at its
        bottom (the operator's child boundary)."""
        if isinstance(node, (L.Project, L.Filter)) and \
                isinstance(node.child, (L.Project, L.Filter)):
            return node.with_children((self._graft(node.child),))
        return node.with_children((self._placeholder,))

    def apply(self, batch: RecordBatch) -> RecordBatch:
        """Run the compiled chain on one delta batch."""
        return self._compiled({id(self._placeholder): batch})

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = self.child.process(ctx)
        if batch.num_rows == 0:
            return self._empty()
        if (ctx.scheduler is not None and self.num_shards > 1
                and batch.num_rows >= self.MIN_PARALLEL_ROWS):
            # Row-wise operators need no key partitioning: contiguous
            # row slices (zero-copy column views) run the compiled
            # pipeline in parallel and concatenate back in slice order,
            # so output row order matches the single-slice path exactly.
            bounds = np.linspace(
                0, batch.num_rows, self.num_shards + 1).astype(np.int64)
            slices = [
                RecordBatch(
                    {n: batch.columns[n][lo:hi] for n in batch.schema.names},
                    batch.schema,
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            outs = run_op_shard_tasks(ctx, ("stateless", id(self)),
                                      self, "apply", [
                (s,) if s.num_rows else None for s in slices
            ])
            return RecordBatch.concat(
                [o for o in outs if o is not None], self.output_schema
            )
        return self.apply(batch)


class WatermarkTrackOp(IncrementalOp):
    """Observes event-time maxima for a watermarked column (§4.3.1).

    Pass-through for data; the engine advances the watermark from the
    observed maxima after the epoch completes, so new values take effect
    next epoch (matching Spark's semantics).
    """

    def __init__(self, column: str, child: IncrementalOp):
        self.column = column
        self.child = child
        self.output_schema = child.output_schema

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = self.child.process(ctx)
        if batch.num_rows:
            ctx.watermarks.observe(self.column, float(np.max(batch.columns[self.column])))
        return batch


class UnionOp(IncrementalOp):
    """Union of two inputs; a static side is emitted once, in epoch 0."""

    def __init__(self, left: IncrementalOp, right: IncrementalOp,
                 left_static: bool, right_static: bool, schema: StructType):
        self.left = left
        self.right = right
        self._left_static = left_static
        self._right_static = right_static
        self.output_schema = schema

    def _side(self, op: IncrementalOp, static: bool, ctx: EpochContext) -> RecordBatch:
        if static and not ctx.is_first_epoch:
            return RecordBatch.empty(op.output_schema)
        return op.process(ctx)

    def process(self, ctx: EpochContext) -> RecordBatch:
        left = self._side(self.left, self._left_static, ctx)
        right = self._side(self.right, self._right_static, ctx)
        right = right.select(left.schema.names)
        return RecordBatch.concat([left, right], self.output_schema)


class StreamStaticJoinOp(IncrementalOp):
    """Join between a stream delta and a static relation (§3, §5.2).

    The static side is materialized once; each epoch joins only the new
    stream rows against it, so cost is proportional to the delta.
    """

    def __init__(self, node: L.Join, stream: IncrementalOp, static: StaticOp,
                 stream_is_left: bool, num_shards: int = 1):
        self._node = node
        self.stream = stream
        self.static = static
        self.stream_is_left = stream_is_left
        self.num_shards = max(1, num_shards)
        self.output_schema = node.schema

    def join_delta(self, delta: RecordBatch) -> RecordBatch:
        """Join one stream delta against the static side."""
        if delta.num_rows == 0:
            return self._empty()
        static_batch = self.static.materialize()
        if self.stream_is_left:
            left, right = delta, static_batch
        else:
            left, right = static_batch, delta
        indices = join_indices(left, right, self._node.on, self._node.how)
        return assemble_join_output(
            left, right, self._node.on, self._node.how, self.output_schema, *indices
        )

    def process(self, ctx: EpochContext) -> RecordBatch:
        delta = self.stream.process(ctx)
        if (ctx.scheduler is not None and self.num_shards > 1
                and self.stream_is_left and self._node.how == "inner"
                and delta.num_rows >= StatelessOp.MIN_PARALLEL_ROWS):
            # Inner join with the stream on the left emits matched pairs
            # in left-row order, so contiguous delta slices joined
            # independently concatenate back to exactly the unsliced
            # output.  (Outer joins append unmatched rows after all
            # matches, which slicing would interleave — those and
            # static-left joins keep the single-call path.)
            bounds = np.linspace(
                0, delta.num_rows, self.num_shards + 1).astype(np.int64)
            slices = [
                RecordBatch(
                    {n: delta.columns[n][lo:hi] for n in delta.schema.names},
                    delta.schema,
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            outs = run_op_shard_tasks(ctx, ("static-join", id(self)),
                                      self, "join_delta", [
                (s,) if s.num_rows else None for s in slices
            ])
            return RecordBatch.concat(
                [o for o in outs if o is not None], self.output_schema
            )
        return self.join_delta(delta)


class StatefulAggregateOp(IncrementalOp):
    """Incrementally maintained grouped aggregation (§5.2, Figure 4).

    Per-key aggregate buffers live in the state store.  Each epoch the
    new data's per-group vectorized partials are merged into the buffers;
    what is emitted depends on the query's output mode:

    * ``complete`` — the whole result table;
    * ``update`` — only keys whose buffers changed this epoch;
    * ``append`` — nothing until the watermark passes a key's event-time
      bound, at which point the key is emitted once and evicted.

    With a watermark, rows later than the bound are dropped and finalized
    keys evicted in update mode too, keeping state bounded (§4.3.1).
    """

    stateful = True

    def __init__(self, node: L.Aggregate, child: IncrementalOp, state_handle,
                 watermark_column: str = None, num_shards: int = 1,
                 output_mode: str = None):
        self._node = node
        self.child = child
        self.state = state_handle
        #: Weighted (Z-set) input: state holds ``[live_count, buffers]``
        #: per group, -1 rows are retracted from the buffers, and retract
        #: mode emits -1 old-row / +1 new-row pairs per changed group.
        self.weighted = WEIGHT_COLUMN in child.output_schema
        self._emit_weighted = self.weighted and output_mode == "retract"
        self.output_schema = (
            weighted_schema(node.schema) if self._emit_weighted else node.schema
        )
        #: Which watermark gates emission/eviction for this aggregate:
        #: the window's time column, or a directly watermarked group key.
        self.watermark_column = watermark_column
        self._window = node.window
        self.num_shards = max(1, num_shards)
        #: Compiled per-row partition keys (None -> not shardable).  Any
        #: plain grouping colocates a whole group (the state key extends
        #: the plain values), so those expressions alone suffice; a
        #: window-only aggregate shards by tumbling window start, and a
        #: sliding window-only aggregate stays on the single-shard path
        #: (one row belongs to several windows).
        self._partition_key_fns = None
        if node.plain_grouping:
            self._partition_key_fns = [
                codegen.compile_expression(g, node.child.schema)
                for g in node.plain_grouping
            ]
        #: Tasks partition by the plain grouping values; without a
        #: window those ARE the state key, so task ownership matches
        #: state sharding.  A windowed aggregate's state key extends the
        #: plain values with the window, hashing differently — stay on
        #: the broadcast path there.
        self.state_aligned = bool(node.plain_grouping) and self._window is None
        #: Group-key pipeline compiled once; per epoch only kernels run.
        self._grouping = plancompiler.compile_grouping(node)
        #: Index of the watermarked plain grouping key (non-window case).
        self._key_time_index = None
        if watermark_column is not None and self._window is None:
            for i, g in enumerate(node.plain_grouping):
                if g.references() == {watermark_column}:
                    self._key_time_index = i
                    break
        if watermark_column is not None and not self.weighted:
            # Expiry-indexed state: advancing the watermark pops only
            # finalized keys instead of scanning the whole store.
            # Weighted aggregates never evict (a retraction may arrive
            # arbitrarily late), so they skip the index.
            self.state.set_expiry(lambda key, _value: self._key_expiry(key))

    def state_handles(self) -> list:
        return [self.state]

    # -- event-time bound of a key ------------------------------------
    def _key_expiry(self, key_tuple):
        """Event time at which a key becomes final (None if unbounded)."""
        if self._window is not None:
            return key_tuple[-1] + self._window.duration  # window end
        if self._key_time_index is not None:
            return key_tuple[self._key_time_index]
        return None

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = self.child.process(ctx)
        if self.weighted:
            return self._process_weighted(batch, ctx)
        watermark = (
            ctx.watermarks.current(self.watermark_column)
            if self.watermark_column is not None else None
        )
        changed = self._merge_new_data(batch, watermark, ctx)
        if ctx.output_mode == "complete":
            # Canonical (encoded-key) order: state iteration order varies
            # with the shard count, the emitted table must not.
            keys, buffers = [], []
            for key, value in sorted(
                    self.state.items(), key=lambda kv: encode_key(kv[0])):
                keys.append(key)
                buffers.append(value)
            return aggregate_result_batch(self._node, keys, buffers)
        if ctx.output_mode == "update":
            self._evict_finalized(watermark)
            keys = sorted(changed)
            buffers = [self.state.get(k) for k in keys]
            live = [(k, b) for k, b in zip(keys, buffers) if b is not None]
            return aggregate_result_batch(
                self._node, [k for k, _ in live], [b for _, b in live]
            )
        # append: emit exactly the keys the watermark has finalized.
        finalized = self._evict_finalized(watermark)
        return aggregate_result_batch(
            self._node, [k for k, _ in finalized], [b for _, b in finalized]
        )

    def _partition_arrays(self, batch: RecordBatch):
        """Per-row partition-key arrays, or None when not shardable."""
        if self._partition_key_fns is not None:
            return [fn(batch) for fn in self._partition_key_fns]
        window = self._window
        if window is not None and window.slide == window.duration:
            # Tumbling window start, computed exactly as assign_batch's
            # k=0 term so a group's rows land in one shard.
            times = np.asarray(
                window.time_expr.eval_batch(batch), dtype=np.float64)
            return [np.floor(times / window.slide) * window.slide]
        return None

    def _merge_new_data(self, batch: RecordBatch, watermark, ctx: EpochContext) -> set:
        """Fold the epoch's partial aggregates into state; returns the set
        of changed keys.

        With ``num_shards > 1`` the delta is hash-partitioned by group
        key and each shard's grouping + partials run as an independent
        task against read-only pre-epoch state; the returned per-shard
        writes are applied here, in shard order, after every task
        finished.  A group's rows always share a shard, so the folded
        buffers are bit-identical to the single-shard fold.
        """
        if batch.num_rows == 0:
            return set()
        parts = None
        if self.num_shards > 1 and batch.num_rows > 1:
            arrays = self._partition_arrays(batch)
            if arrays is not None:
                assign = shard_assignments(arrays, self.num_shards)
                parts, _ = partition_by_assignment(
                    batch, assign, self.num_shards)
        if parts is None:
            results = [self._merge_shard(batch, watermark)]
        else:
            results = run_op_shard_tasks(ctx, ("agg", id(self)),
                                         self, "_merge_shard", [
                (p, watermark) if p.num_rows else None for p in parts
            ])
        changed = set()
        for result in results:
            if result is None:
                continue
            puts, shard_changed, late_rows = result
            for key, buffers in puts.items():
                self.state.put(key, buffers)
            changed |= shard_changed
            ctx.metrics["late_rows_dropped"] += late_rows
        return changed

    def _merge_shard(self, batch: RecordBatch, watermark) -> tuple:
        """Pure shard task: group one sub-batch and fold its partials.

        Reads pre-epoch state only; returns ``(puts, changed, late)``
        with all writes deferred, so speculative or retried attempts are
        idempotent.
        """
        expanded, codes, uniques = self._grouping(batch)
        late_rows = 0
        if watermark is not None and len(uniques):
            expanded, codes, uniques, late_rows = self._drop_late(
                expanded, codes, uniques, watermark
            )
        if not len(uniques):
            return {}, set(), late_rows
        aggs = self._node.aggregates
        partials_per_agg = [
            fn.batch_partials(expanded, codes, len(uniques)) for fn, _ in aggs
        ]
        puts = {}
        for g, key in enumerate(uniques):
            buffers = self.state.get(key)
            if buffers is None:
                buffers = [fn.init() for fn, _ in aggs]
            buffers = [
                fn.merge(buffers[j], partials_per_agg[j][g])
                for j, (fn, _) in enumerate(aggs)
            ]
            puts[key] = buffers
        return puts, set(puts), late_rows

    # -- weighted (Z-set) path -----------------------------------------
    def _process_weighted(self, batch: RecordBatch, ctx: EpochContext) -> RecordBatch:
        """Maintain the aggregate under retraction (§4.2 generalized).

        +1 rows merge into the per-group buffers exactly as the append
        path does; -1 rows *retract* their partials back out.  A group's
        live-row count rides along in state, so the group disappears
        when its last row is retracted.  Retract mode emits the change
        as a Z-set: the group's previous result row with weight -1 and
        its new result row with weight +1 (either half absent at group
        birth/death); complete mode emits the whole live table.
        """
        emits = self._merge_weighted(batch, ctx)
        if ctx.output_mode == "complete":
            keys, buffers = [], []
            for key, value in sorted(
                    self.state.items(), key=lambda kv: encode_key(kv[0])):
                keys.append(key)
                buffers.append(value[1])
            return aggregate_result_batch(self._node, keys, buffers)
        # retract: canonical key order, -1 old row before +1 new row.
        emits.sort(key=lambda e: encode_key(e[0]))
        keys_out, buffers_out, weights = [], [], []
        for key, old_buffers, new_buffers in emits:
            if old_buffers is not None and old_buffers == new_buffers:
                continue  # result row unchanged: no visible delta
            if old_buffers is not None:
                keys_out.append(key)
                buffers_out.append(old_buffers)
                weights.append(-1)
            if new_buffers is not None:
                keys_out.append(key)
                buffers_out.append(new_buffers)
                weights.append(1)
        if not keys_out:
            return self._empty()
        result = aggregate_result_batch(self._node, keys_out, buffers_out)
        return attach_weights(result, weights)

    def _merge_weighted(self, batch: RecordBatch, ctx: EpochContext) -> list:
        """Fold a weighted delta into state; returns per-key emissions
        ``(key, old_buffers_or_None, new_buffers_or_None)``."""
        if batch.num_rows == 0:
            return []
        parts = None
        if self.num_shards > 1 and batch.num_rows > 1:
            arrays = self._partition_arrays(batch)
            if arrays is not None:
                assign = shard_assignments(arrays, self.num_shards)
                parts, _ = partition_by_assignment(
                    batch, assign, self.num_shards)
        if parts is None:
            results = [self._merge_shard_weighted(batch)]
        else:
            results = run_op_shard_tasks(ctx, ("agg", id(self)),
                                         self, "_merge_shard_weighted", [
                (p,) if p.num_rows else None for p in parts
            ])
        emits = []
        for result in results:
            if result is None:
                continue
            puts, removes, shard_emits = result
            for key, value in puts.items():
                self.state.put(key, value)
            for key in removes:
                self.state.remove(key)
            emits.extend(shard_emits)
        return emits

    def _merge_shard_weighted(self, batch: RecordBatch) -> tuple:
        """Pure shard task: fold one weighted sub-batch into state.

        Reads pre-epoch state only; returns ``(puts, removes, emits)``
        with all writes deferred.  State values are ``[live, buffers]``
        where ``live`` is the group's surviving row count (the Z-set
        multiplicity of the group's input rows).
        """
        additions, retractions = split_by_sign(batch)
        aggs = self._node.aggregates
        deltas = {}  # key -> [live_delta, add_partials, retract_partials]
        for sign, part in ((1, additions), (-1, retractions)):
            if part.num_rows == 0:
                continue
            expanded, codes, uniques = self._grouping(part)
            counts = np.bincount(codes, minlength=len(uniques))
            partials_per_agg = [
                fn.batch_partials(expanded, codes, len(uniques))
                for fn, _ in aggs
            ]
            for g, key in enumerate(uniques):
                entry = deltas.setdefault(key, [0, None, None])
                entry[0] += sign * int(counts[g])
                entry[1 if sign > 0 else 2] = [
                    partials_per_agg[j][g] for j in range(len(aggs))
                ]
        puts, removes, emits = {}, [], []
        for key, (live_delta, add_p, retract_p) in deltas.items():
            value = self.state.get(key)
            old_live, old_buffers = value if value is not None else (0, None)
            buffers = old_buffers if old_buffers is not None \
                else [fn.init() for fn, _ in aggs]
            if add_p is not None:
                buffers = [
                    fn.merge(buffers[j], add_p[j])
                    for j, (fn, _) in enumerate(aggs)
                ]
            if retract_p is not None:
                buffers = [
                    fn.retract(buffers[j], retract_p[j])
                    for j, (fn, _) in enumerate(aggs)
                ]
            new_live = old_live + live_delta
            if new_live < 0:
                raise ValueError(
                    f"retraction of a row never added: group {key!r} "
                    f"multiplicity would become {new_live}"
                )
            if new_live == 0:
                if value is not None:
                    removes.append(key)
            else:
                puts[key] = [new_live, buffers]
            emits.append((
                key,
                old_buffers if old_live > 0 else None,
                buffers if new_live > 0 else None,
            ))
        return puts, removes, emits

    def _drop_late(self, expanded, codes, uniques, watermark):
        """Remove group memberships whose key is already finalized."""
        late_codes = {
            g for g, key in enumerate(uniques)
            if (expiry := self._key_expiry(key)) is not None and expiry <= watermark
        }
        if not late_codes:
            return expanded, codes, uniques, 0
        keep = ~np.isin(codes, list(late_codes))
        late_rows = int((~keep).sum())
        expanded = expanded.filter(keep)
        kept_codes = codes[keep]
        # Re-encode to dense codes over surviving groups.
        mapping = {}
        new_codes = np.empty(len(kept_codes), dtype=np.int64)
        new_uniques = []
        for i, code in enumerate(kept_codes.tolist()):
            new = mapping.get(code)
            if new is None:
                new = len(new_uniques)
                mapping[code] = new
                new_uniques.append(uniques[code])
            new_codes[i] = new
        return expanded, new_codes, new_uniques, late_rows

    def _evict_finalized(self, watermark) -> list:
        """Remove keys the watermark finalized; returns (key, buffers).

        Uses the state handle's expiry index: cost is proportional to the
        number of finalized keys, not the total key count."""
        if watermark is None:
            return []
        finalized = self.state.pop_expired(watermark)
        for key, _buffers in finalized:
            self.state.remove(key)
        finalized.sort(key=lambda kv: kv[0])
        return finalized


class StreamingDedupOp(IncrementalOp):
    """Streaming DISTINCT: emit a row the first time its key is seen.

    State holds every seen key; when the dedup subset contains a
    watermarked event-time column, keys older than the watermark are
    evicted (late duplicates would be dropped anyway).
    """

    stateful = True
    #: Tasks partition by ``node.subset`` — exactly the state key.
    state_aligned = True

    def __init__(self, node: L.Deduplicate, child: IncrementalOp, state_handle,
                 watermark_column: str = None, num_shards: int = 1):
        self._node = node
        self.child = child
        self.state = state_handle
        self.output_schema = node.schema
        self.num_shards = max(1, num_shards)
        self.watermark_column = (
            watermark_column if watermark_column in node.subset else None
        )
        self._time_index = (
            node.subset.index(self.watermark_column)
            if self.watermark_column is not None else None
        )
        #: Weighted (Z-set) input: state holds the key's live-row
        #: multiset and the op emits the representative (earliest
        #: surviving row) as it appears, changes, or disappears.
        self.weighted = WEIGHT_COLUMN in child.output_schema
        if self.watermark_column is not None and not self.weighted:
            # State values are the key's event time: expiry == value.
            # (Weighted dedup never evicts: a late retraction must still
            # find the key's multiplicity.)
            self.state.set_expiry(lambda _key, value: value)

    def state_handles(self) -> list:
        return [self.state]

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = self.child.process(ctx)
        if batch.num_rows == 0:
            return self._empty()
        if self.weighted:
            return self._process_weighted(batch, ctx)
        watermark = (
            ctx.watermarks.current(self.watermark_column)
            if self.watermark_column is not None else None
        )
        if self.num_shards > 1 and batch.num_rows > 1:
            # Hash-partition by the dedup subset: every occurrence of a
            # key lands in one shard, so per-shard first-seen decisions
            # are globally correct.
            parts, indices = hash_partition(
                batch, self._node.subset, self.num_shards)
            results = run_op_shard_tasks(ctx, ("dedup", id(self)),
                                         self, "_dedup_shard", [
                (p, watermark) if p.num_rows else None for p in parts
            ])
            keep_rows = []
            for shard, result in enumerate(results):
                if result is None:
                    continue
                puts, keep_local, late_rows = result
                for key, value in puts.items():
                    self.state.put(key, value)
                keep_rows.extend(indices[shard][keep_local].tolist())
                ctx.metrics["late_rows_dropped"] += late_rows
        else:
            puts, keep_local, late_rows = self._dedup_shard(batch, watermark)
            for key, value in puts.items():
                self.state.put(key, value)
            keep_rows = list(keep_local)
            ctx.metrics["late_rows_dropped"] += late_rows
        if watermark is not None:
            for key, _value in self.state.pop_expired(watermark):
                self.state.remove(key)
        if not keep_rows:
            return self._empty()
        keep_rows.sort()
        return batch.take(np.asarray(keep_rows, dtype=np.int64))

    # -- weighted (Z-set) path -----------------------------------------
    def _process_weighted(self, batch: RecordBatch, ctx: EpochContext) -> RecordBatch:
        """Maintain the distinct table under retraction.

        State per key is ``[total, [[count, row], ...]]`` — the multiset
        of live rows sharing the dedup key, in first-insertion order.
        The *representative* (what batch ``drop_duplicates`` would keep:
        the earliest surviving occurrence) is the first entry; whenever a
        delta row changes the representative the op emits ``-1`` old
        representative / ``+1`` new one.  Emission order follows the
        input delta's row order regardless of the shard count.
        """
        if self.num_shards > 1 and batch.num_rows > 1:
            parts, indices = hash_partition(
                batch, self._node.subset, self.num_shards)
            results = run_op_shard_tasks(ctx, ("dedup", id(self)),
                                         self, "_dedup_shard_weighted", [
                (p, idx) if p.num_rows else None
                for p, idx in zip(parts, indices)
            ])
        else:
            results = [self._dedup_shard_weighted(
                batch, np.arange(batch.num_rows, dtype=np.int64))]
        emits = []
        for result in results:
            if result is None:
                continue
            puts, removes, shard_emits = result
            for key, value in puts.items():
                self.state.put(key, value)
            for key in removes:
                self.state.remove(key)
            emits.extend(shard_emits)
        if not emits:
            return self._empty()
        emits.sort(key=lambda e: e[0])
        names = self.output_schema.names
        rows = [dict(zip(names, values)) for _pos, values in emits]
        return RecordBatch.from_rows(rows, self.output_schema)

    def _dedup_shard_weighted(self, batch: RecordBatch, positions) -> tuple:
        """Pure shard task: weighted dedup of one sub-batch.

        Returns ``(puts, removes, emits)`` with emits as
        ``(global_position, row_values)`` — row values in output-schema
        order with the weight slot set to the emitted sign.
        """
        names = batch.schema.names
        subset_idx = [names.index(n) for n in self._node.subset]
        weight_idx = names.index(WEIGHT_COLUMN)
        data_idx = [i for i in range(len(names)) if i != weight_idx]
        local = {}
        emits = []
        rows = list(zip(*(batch.columns[n].tolist() for n in names)))
        for pos, row in zip(np.asarray(positions).tolist(), rows):
            weight = int(row[weight_idx])
            key = tuple(row[i] for i in subset_idx)
            entries = local.get(key)
            if entries is None:
                stored = self.state.get(key)
                entries = ([[int(c), list(v)] for c, v in stored[1]]
                           if stored is not None else [])
                local[key] = entries
            old_rep = entries[0][1] if entries else None
            if weight > 0:
                for e in entries:
                    if all(e[1][i] == row[i] for i in data_idx):
                        e[0] += 1
                        break
                else:
                    canonical = list(row)
                    canonical[weight_idx] = 1
                    entries.append([1, canonical])
            else:
                for i, e in enumerate(entries):
                    if all(e[1][i2] == row[i2] for i2 in data_idx):
                        e[0] -= 1
                        if e[0] == 0:
                            del entries[i]
                        break
                else:
                    raise ValueError(
                        "retraction of a row never added: dedup key "
                        f"{key!r} has no live row matching the -1 delta"
                    )
            new_rep = entries[0][1] if entries else None
            if new_rep is not old_rep:
                # Only count mutations keep the same list object, so
                # identity tracks "the representative row changed".
                if old_rep is not None:
                    emitted = list(old_rep)
                    emitted[weight_idx] = -1
                    emits.append((pos, emitted))
                if new_rep is not None:
                    emitted = list(new_rep)
                    emitted[weight_idx] = 1
                    emits.append((pos, emitted))
        puts, removes = {}, []
        for key, entries in local.items():
            if not entries:
                if self.state.contains(key):
                    removes.append(key)
            else:
                puts[key] = [sum(e[0] for e in entries), entries]
        return puts, removes, emits

    def _dedup_shard(self, batch: RecordBatch, watermark) -> tuple:
        """Pure shard task: first-seen rows of one sub-batch.

        Returns ``(puts, keep_positions, late_rows)`` with positions
        local to the sub-batch and state writes deferred.
        """
        codes, uniques = encode_groups(
            [batch.columns[n] for n in self._node.subset]
        )
        # First occurrence of each dense code, vectorized: codes are
        # 0..G-1 with every code present, so np.unique's return_index
        # gives the first row position per code.
        _, first_pos = np.unique(codes, return_index=True)
        live_codes = np.arange(len(uniques))
        late_rows = 0
        if watermark is not None:
            key_times = np.asarray(
                [uniques[g][self._time_index] for g in range(len(uniques))],
                dtype=np.float64,
            )
            late = key_times <= watermark
            if late.any():
                # Every occurrence of a late key is a dropped row (§7.4).
                counts = np.bincount(codes, minlength=len(uniques))
                late_rows = int(counts[late].sum())
                live_codes = live_codes[~late]
        puts = {}
        keep_positions = []
        for g in live_codes.tolist():
            key = uniques[g]
            if not self.state.contains(key):
                puts[key] = (
                    key[self._time_index] if self._time_index is not None else 1
                )
                keep_positions.append(first_pos[g])
        return puts, np.asarray(keep_positions, dtype=np.int64), late_rows


class StreamStreamJoinOp(IncrementalOp):
    """Join between two streams (§5.2, §8.1's TCP ⋈ DHCP pattern).

    Both sides' rows are buffered in the state store.  Each epoch,
    new-left rows join buffered+new right rows and buffered left rows
    join new-right rows (so no pair is produced twice).

    State bounding follows the paper's rule that "the join condition
    must involve a watermarked column": with a ``within`` time bound,
    rows older than their own side's watermark are dropped as late at
    the input, and a buffered row is evicted once the *other* side's
    watermark passes its time plus the allowed skew — at which point it
    is provably unmatchable, so outer joins can emit it null-padded.
    Without a bound (inner joins only), no state is ever evicted, as in
    Spark.
    """

    stateful = True
    #: Both sides' tasks and both state handles key by ``node.on``.
    state_aligned = True

    def __init__(self, node: L.Join, left: IncrementalOp, right: IncrementalOp,
                 left_state, right_state, num_shards: int = 1):
        self._node = node
        self.left = left
        self.right = right
        self._left_state = left_state
        self._right_state = right_state
        self.num_shards = max(1, num_shards)
        self.within = node.within  # (left_time_col, right_time_col, skew)
        self.output_schema = node.schema
        self._inner = self._inner_schema()
        #: Weighted sides: a buffered row's weight rides along in its
        #: stored values; an output pair's weight is the *product* of
        #: the two sides' weights (Z-set bilinearity), so a -1 input row
        #: retracts every pair its +1 twin produced.  With both sides
        #: weighted the two weight columns fold into one output column.
        left_names = left.output_schema.names
        right_names = right.output_schema.names
        self._weight_fold = None
        if WEIGHT_COLUMN in left_names and WEIGHT_COLUMN in right_names:
            self._weight_fold = (
                left_names.index(WEIGHT_COLUMN),
                right_names.index(WEIGHT_COLUMN),
            )
        if self.within is not None:
            left_col, right_col, skew = self.within
            lt = self.left.output_schema.names.index(left_col)
            rt = self.right.output_schema.names.index(right_col)
            # A key's entries become evictable starting at
            # min(entry time) + skew; re-puts refresh the index.
            self._left_state.set_expiry(
                lambda _key, entries, i=lt, s=skew:
                min(e[0][i] for e in entries) + s if entries else None)
            self._right_state.set_expiry(
                lambda _key, entries, i=rt, s=skew:
                min(e[0][i] for e in entries) + s if entries else None)

    def state_handles(self) -> list:
        return [self._left_state, self._right_state]

    # State entry per side: key -> list of [row_values, matched_flag].
    def _rows_by_key(self, batch: RecordBatch, row_offsets=None) -> dict:
        """Group the delta's rows (as value lists) by join key, in row
        order — the only materialization this epoch performs.  Returns
        ``key -> (first_row_index, [row_values, ...])``; indices come
        from ``row_offsets`` (global positions of this sub-batch's rows)
        so sharded probes can be merged back into global delta order."""
        by_key = {}
        if batch.num_rows == 0:
            return by_key
        names = batch.schema.names
        key_idx = [names.index(k) for k in self._node.on]
        for pos, row in enumerate(zip(*(batch.columns[n].tolist() for n in names))):
            key = tuple(row[i] for i in key_idx)
            entry = by_key.get(key)
            if entry is None:
                first = int(row_offsets[pos]) if row_offsets is not None else pos
                entry = by_key[key] = (first, [])
            entry[1].append(list(row))
        return by_key

    def _drop_late_input(self, batch: RecordBatch, time_col: str,
                         watermark, ctx: EpochContext) -> RecordBatch:
        """Drop input rows at or below their side's watermark: required
        for eviction to be sound (an accepted row's time always exceeds
        the watermark at acceptance)."""
        if watermark is None or batch.num_rows == 0:
            return batch
        keep = np.asarray(batch.columns[time_col], dtype=np.float64) > watermark
        if not keep.all():
            ctx.metrics["late_rows_dropped"] += int((~keep).sum())
            batch = batch.filter(keep)
        return batch

    def process(self, ctx: EpochContext) -> RecordBatch:
        new_left = self.left.process(ctx)
        new_right = self.right.process(ctx)

        if self.within is not None:
            left_col, right_col, skew = self.within
            new_left = self._drop_late_input(
                new_left, left_col, ctx.watermarks.current(left_col), ctx)
            new_right = self._drop_late_input(
                new_right, right_col, ctx.watermarks.current(right_col), ctx)
            lt_idx = self.left.output_schema.names.index(left_col)
            rt_idx = self.right.output_schema.names.index(right_col)
        else:
            lt_idx = rt_idx = skew = None

        if self.num_shards > 1 and new_left.num_rows + new_right.num_rows > 1:
            # Hash-partition both deltas by join key: a key's rows (and
            # its buffered state) belong to exactly one shard, so shard
            # probes never overlap.
            l_parts, l_idx = hash_partition(
                new_left, self._node.on, self.num_shards)
            r_parts, r_idx = hash_partition(
                new_right, self._node.on, self.num_shards)
            results = run_op_shard_tasks(ctx, ("join", id(self)),
                                         self, "_probe_shard", [
                (lp, li, rp, ri, lt_idx, rt_idx, skew)
                if lp.num_rows or rp.num_rows else None
                for lp, li, rp, ri in zip(l_parts, l_idx, r_parts, r_idx)
            ])
        else:
            results = [self._probe_shard(
                new_left, None, new_right, None, lt_idx, rt_idx, skew)]

        chunks = []
        for result in results:
            if result is None:
                continue
            left_puts, right_puts, shard_chunks = result
            for key, entries in left_puts.items():
                self._left_state.put(key, entries)
            for key, entries in right_puts.items():
                self._right_state.put(key, entries)
            chunks.extend(shard_chunks)
        # Global probe order: left keys by first delta row, then
        # right-only keys — independent of shard count and worker timing.
        chunks.sort(key=lambda c: c[0])
        out_rows = []
        for _token, rows in chunks:
            out_rows.extend(rows)

        out_parts = []
        if out_rows:
            out_parts.append(self._matched_batch(out_rows))
        out_parts.extend(self._evict(ctx))
        if not out_parts:
            return self._empty()
        parts = [self._to_output_schema(p) for p in out_parts]
        return RecordBatch.concat(parts, self.output_schema)

    def _probe_shard(self, new_left: RecordBatch, left_offsets,
                     new_right: RecordBatch, right_offsets,
                     lt_idx, rt_idx, skew) -> tuple:
        """Pure shard task: probe one shard's delta keys against state.

        Probes the state store only for the distinct keys present in the
        deltas (per-epoch cost is O(delta + matches), not O(buffered
        state)), reading pre-epoch entry lists and *cloning* them before
        appending rows or flipping matched flags — every write is
        deferred into the returned put dicts, so a speculative copy of
        the task races safely against the same immutable state.  Returns
        ``(left_puts, right_puts, chunks)`` where each chunk is
        ``((side, first_row_index), out_rows)`` for deterministic
        merging.
        """
        left_by_key = self._rows_by_key(new_left, left_offsets)
        right_by_key = self._rows_by_key(new_right, right_offsets)
        right_names = self.right.output_schema.names
        rest_idx = [
            i for i, n in enumerate(right_names)
            if n not in self._node.on
            and not (self._weight_fold is not None and n == WEIGHT_COLUMN)
        ]
        left_puts, right_puts, chunks = {}, {}, []
        probe = [(key, (0, first)) for key, (first, _rows)
                 in left_by_key.items()]
        probe.extend(
            (key, (1, first)) for key, (first, _rows)
            in right_by_key.items() if key not in left_by_key
        )
        for key, token in probe:
            nl = left_by_key.get(key)
            nr = right_by_key.get(key)
            stored_l = self._left_state.get(key)
            stored_r = self._right_state.get(key)
            l_entries = [[e[0], e[1]] for e in stored_l] if stored_l else []
            r_entries = [[e[0], e[1]] for e in stored_r] if stored_r else []
            # Add new rows first so matched flags land on them.
            bl = len(l_entries)
            br = len(r_entries)
            if nl:
                l_entries.extend([row, False] for row in nl[1])
            if nr:
                r_entries.extend([row, False] for row in nr[1])
            matched = False
            out_rows = []
            if l_entries and r_entries:
                # new-left x (buffered + new right), then buffered-left x
                # new-right: together every pair exactly once.
                matched = self._join_pairs(
                    l_entries[bl:], r_entries, out_rows,
                    lt_idx, rt_idx, skew, rest_idx, self._weight_fold)
                matched |= self._join_pairs(
                    l_entries[:bl], r_entries[br:], out_rows,
                    lt_idx, rt_idx, skew, rest_idx, self._weight_fold)
            # A side is (re)written exactly when the old in-place code
            # dirtied it: new rows arrived, or a matched flag flipped.
            if nl or matched:
                left_puts[key] = l_entries
            if nr or matched:
                right_puts[key] = r_entries
            if out_rows:
                chunks.append((token, out_rows))
        return left_puts, right_puts, chunks

    @staticmethod
    def _join_pairs(l_entries, r_entries, out_rows,
                    lt_idx, rt_idx, skew, rest_idx, weight_fold=None) -> bool:
        """Emit the cross product of two entry lists (within the time
        bound), flipping matched flags by entry identity; True if any
        pair matched.  With ``weight_fold = (left_idx, right_idx)`` the
        output row's single weight slot holds the product of the two
        sides' multiplicities."""
        matched = False
        for l_entry in l_entries:
            l_values = l_entry[0]
            for r_entry in r_entries:
                r_values = r_entry[0]
                if skew is not None and \
                        abs(l_values[lt_idx] - r_values[rt_idx]) > skew:
                    continue
                row = l_values + [r_values[j] for j in rest_idx]
                if weight_fold is not None:
                    lw_idx, rw_idx = weight_fold
                    row[lw_idx] = int(l_values[lw_idx]) * int(r_values[rw_idx])
                out_rows.append(row)
                l_entry[1] = True
                r_entry[1] = True
                matched = True
        return matched

    def _matched_batch(self, out_rows: list) -> RecordBatch:
        """Build the matched-pair batch (inner schema) from value lists."""
        columns = {}
        for idx, field in enumerate(self._inner):
            values = [row[idx] for row in out_rows]
            if field.data_type.numpy_dtype is object:
                arr = np.empty(len(values), dtype=object)
                arr[:] = values
            else:
                arr = np.asarray(values, dtype=field.data_type.numpy_dtype)
            columns[field.name] = arr
        return RecordBatch(columns, self._inner)

    def _inner_schema(self) -> StructType:
        """Schema of matched pairs (no null padding yet)."""
        return L.Join(
            make_placeholder(self.left.output_schema),
            make_placeholder(self.right.output_schema),
            self._node.on, "inner",
        ).schema

    def _to_output_schema(self, batch: RecordBatch) -> RecordBatch:
        """Cast a partial result to the (possibly nullable-promoted)
        output schema of the outer join."""
        if batch.schema.names != self.output_schema.names:
            batch = batch.select(self.output_schema.names)
        columns = {}
        for field in self.output_schema:
            col = batch.columns[field.name]
            target = field.data_type.numpy_dtype
            if target is not object and col.dtype != object and col.dtype != target:
                col = col.astype(target)
            columns[field.name] = col
        return RecordBatch(columns, self.output_schema)

    def _evict(self, ctx: EpochContext) -> list:
        """Evict rows the time bound has made unmatchable; emit outer
        results for never-matched evicted rows.

        A buffered left row with time t can only match right rows with
        time in [t - skew, t + skew]; since late right input is dropped
        at the right watermark, the left row is final once
        ``right_watermark >= t + skew`` — and symmetrically.

        The expiry index pops exactly the keys holding at least one
        evictable entry (their earliest entry time + skew has passed), so
        the scan is proportional to evicted keys, not buffered state.
        """
        if self.within is None:
            return []
        left_col, right_col, skew = self.within
        parts = []
        for side, state, schema, own_col, other_watermark, emits_outer in (
            ("left", self._left_state, self.left.output_schema, left_col,
             ctx.watermarks.current(right_col), self._node.how == "left_outer"),
            ("right", self._right_state, self.right.output_schema, right_col,
             ctx.watermarks.current(left_col), self._node.how == "right_outer"),
        ):
            if other_watermark is None:
                continue
            time_index = schema.names.index(own_col)
            unmatched_rows = []
            for key, entries in state.pop_expired(other_watermark):
                keep = []
                for values, matched in entries:
                    if values[time_index] + skew <= other_watermark:
                        if not matched and emits_outer:
                            unmatched_rows.append(values)
                    else:
                        keep.append([values, matched])
                if keep:
                    state.put(key, keep)
                else:
                    state.remove(key)
            if unmatched_rows:
                side_batch = RecordBatch.from_rows(
                    [dict(zip(schema.names, v)) for v in unmatched_rows], schema
                )
                parts.append(self._null_padded(side_batch, side))
        return parts

    def _null_padded(self, batch: RecordBatch, side: str) -> RecordBatch:
        """Outer-join rows for evicted unmatched rows of one side."""
        empty_other = RecordBatch.empty(
            self.right.output_schema if side == "left" else self.left.output_schema
        )
        if side == "left":
            indices = join_indices(batch, empty_other, self._node.on, "left_outer")
            return assemble_join_output(
                batch, empty_other, self._node.on, "left_outer",
                self.output_schema, *indices,
            )
        indices = join_indices(empty_other, batch, self._node.on, "right_outer")
        return assemble_join_output(
            empty_other, batch, self._node.on, "right_outer",
            self.output_schema, *indices,
        )


class MapGroupsWithStateOp(IncrementalOp):
    """Custom per-key stateful processing (§4.3.2, Figure 3).

    State entries: ``{"s": user_state, "t": timeout_timestamp}``.  Each
    epoch the update function runs once per key with new data; keys whose
    armed timeout expired (processing time passed it, or the event-time
    watermark passed it) and that received no data this epoch get a
    timed-out invocation with no rows.
    """

    stateful = True

    def __init__(self, node: L.MapGroupsWithState, child: IncrementalOp,
                 state_handle, watermark_column: str = None,
                 num_shards: int = 1):
        self._node = node
        self.child = child
        self.state = state_handle
        self.output_schema = node.schema
        #: State is shard-partitioned like every stateful operator (so
        #: rescaling applies), but invocation stays single-task: the
        #: user's Python function holds the GIL, so sharding the calls
        #: buys no parallelism and risks interleaving side effects.
        self.num_shards = max(1, num_shards)
        self.watermark_column = watermark_column
        if node.timeout != "none":
            # Index armed timeouts so expiry checks need no full scan.
            self.state.set_expiry(lambda _key, value: value.get("t"))

    def has_pending_timeout(self, processing_time: float) -> bool:
        if self._node.timeout != "processing_time":
            return False
        earliest = self.state.next_expiry()
        return earliest is not None and earliest <= processing_time

    def _watermark(self, ctx: EpochContext):
        if self.watermark_column is None:
            return None
        return ctx.watermarks.current(self.watermark_column)

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = self.child.process(ctx)
        watermark = self._watermark(ctx)
        out_rows = []
        processed_keys = set()

        if batch.num_rows:
            codes, uniques = encode_groups(
                [batch.columns[n] for n in self._node.key_columns]
            )
            rows = batch.to_rows()
            grouped = {}
            for code, row in zip(codes.tolist(), rows):
                grouped.setdefault(code, []).append(row)
            for code in sorted(grouped):
                key = uniques[code]
                processed_keys.add(key)
                out_rows.extend(self._invoke(
                    key, grouped[code], ctx, watermark, has_timed_out=False
                ))

        out_rows.extend(self._fire_timeouts(ctx, watermark, processed_keys))
        return RecordBatch.from_rows(out_rows, self.output_schema)

    def _invoke(self, key, rows, ctx: EpochContext, watermark, has_timed_out: bool) -> list:
        entry = self.state.get(key)
        state = GroupState(
            value=None if entry is None else entry.get("s"),
            exists=entry is not None,
            has_timed_out=has_timed_out,
            watermark=watermark,
            processing_time=ctx.processing_time,
            timeout_conf=self._node.timeout,
        )
        key_value = key[0] if len(self._node.key_columns) == 1 else key
        result = self._node.func(key_value, iter(rows), state)
        outcome = state._outcome()
        if outcome["removed"]:
            self.state.remove(key)
        elif outcome["updated"] or outcome["timeout_changed"]:
            timeout = outcome["timeout_timestamp"] if outcome["timeout_changed"] \
                else (entry.get("t") if entry else None)
            if outcome["updated"]:
                self.state.put(key, {"s": outcome["value"], "t": timeout})
            elif entry is not None:
                self.state.put(key, {"s": entry.get("s"), "t": timeout})
        return normalize_func_output(
            result, self._node.flat, self._node.key_columns, key
        )

    def _fire_timeouts(self, ctx: EpochContext, watermark, processed_keys: set) -> list:
        """Invoke the function with ``has_timed_out=True`` for expired keys."""
        timeout_conf = self._node.timeout
        if timeout_conf == "none":
            return []
        if timeout_conf == "processing_time":
            now = ctx.processing_time
        else:
            now = watermark
        if now is None:
            return []
        out_rows = []
        expired = sorted(self.state.pop_expired(now), key=lambda kv: str(kv[0]))
        for key, entry in expired:
            if key in processed_keys:
                # Saw data this epoch: fires next epoch (as the old full
                # scan would), so put the index entry back untouched.
                self.state.reindex(key)
                continue
            # Clear the timeout before invoking so the function can
            # re-arm or remove state explicitly.
            self.state.put(key, {"s": entry.get("s"), "t": None})
            out_rows.extend(self._invoke(
                key, [], ctx, watermark, has_timed_out=True
            ))
        return out_rows


class CompleteModePostOp(IncrementalOp):
    """Sort/Limit applied to a complete-mode result table (§5.2).

    Only valid in complete mode, where each epoch's emission *is* the
    whole result table; the node then applies like a batch operator.
    """

    def __init__(self, node: L.LogicalPlan, child: IncrementalOp):
        self._placeholder = make_placeholder(child.output_schema)
        self._node = node.with_children((self._placeholder,))
        self.output_schema = self._node.schema
        self.child = child
        self._compiled = plancompiler.compile_plan(self._node)

    def process(self, ctx: EpochContext) -> RecordBatch:
        batch = self.child.process(ctx)
        return self._compiled({id(self._placeholder): batch})
