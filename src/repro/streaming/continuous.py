"""Continuous processing mode (§6.3).

Instead of scheduling an epoch job per trigger, the engine launches one
*long-lived* worker per input partition.  Each worker polls its
partition, pushes new records through the compiled stateless pipeline
and writes them to the sink immediately — latency is polling interval +
per-chunk compute, not task-scheduling overhead.  A master thread
periodically snapshots the workers' positions into the write-ahead log
as epochs (§6.3: "the master is not on the critical path"), so rollback
and restart still work; replay after a crash is at-least-once within
the last epoch.

Like the first released version in Spark 2.3, only *map-like* queries
are supported: projections, filters and stream-static joins — no shuffle
(stateful) operators.  The declarative API is what makes this engine
swappable for the microbatch one without changing user queries (the
paper's argument for API/execution separation).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import observability
from repro.observability import metrics, tracing
from repro.observability.flightrec import FlightRecorder
from repro.observability.metrics import Histogram
from repro.streaming import operators as ops
from repro.streaming.incrementalizer import incrementalize
from repro.streaming.operators import EpochContext
from repro.streaming.progress import EpochProgress, ProgressReporter
from repro.streaming.state import StateStore
from repro.streaming.wal import WriteAheadLog
from repro.streaming.watermark import WatermarkTracker
from repro.testing.faults import fault_point


class UnsupportedContinuousQueryError(Exception):
    """Raised for queries the continuous engine cannot run (non-map-like)."""


class _PartitionWorker:
    """Long-lived operator instance for one input partition."""

    def __init__(self, engine: "ContinuousEngine", partition: str, start_offset: int):
        self.engine = engine
        self.partition = partition
        self.position = start_offset
        self.rows_written = 0
        self._span_name = f"chunk:{partition}"
        self._thread = threading.Thread(
            target=self._run, name=f"continuous-{partition}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def join(self) -> None:
        self._thread.join(timeout=10)

    def _run(self) -> None:
        engine = self.engine
        source = engine.source
        max_chunk = engine.max_chunk
        poll = engine.poll_interval
        try:
            while not engine._stop_event.is_set():
                end = source.latest_offsets().get(self.partition, self.position)
                if end <= self.position:
                    time.sleep(poll)
                    continue
                hi = min(end, self.position + max_chunk)
                with tracing.trace_span(self._span_name):
                    batch = source.get_partition_batch(
                        self.partition, self.position, hi)
                    out = engine.pipeline(batch)
                    if out.num_rows:
                        engine.sink.append_rows(out.to_rows())
                        engine.record_latency(out)
                metrics.count("continuous.chunks")
                metrics.count("continuous.rows_out", out.num_rows)
                self.rows_written += out.num_rows
                self.position = hi
        except Exception as exc:
            # Surface the failure to the query handle instead of dying
            # silently; the paper's model simply relaunches the task, but
            # a deterministic error (bad UDF) must reach the user (§7.1).
            engine._worker_error = exc
            engine._stop_event.set()


class ContinuousEngine:
    """Continuous-mode execution of a map-like streaming query."""

    def __init__(self, plan, sink, output_mode: str, checkpoint_dir: str,
                 epoch_interval: float = 1.0, max_chunk: int = 1024,
                 poll_interval: float = 0.0002,
                 latency_column: str = None, latency_clock=time.monotonic):
        if output_mode != "append":
            raise UnsupportedContinuousQueryError(
                "continuous processing supports append mode only"
            )
        self.sink = sink
        self.output_mode = output_mode
        self.epoch_interval = epoch_interval
        self.max_chunk = max_chunk
        self.poll_interval = poll_interval

        # Single-partition fast path: continuous workers each own their
        # input partition and run map-like pipelines only, so the epoch
        # sharding of the microbatch engine never applies here.
        self.state_store = StateStore(checkpoint_dir, num_shards=1)
        self.plan = incrementalize(plan, output_mode, self.state_store,
                                   num_shards=1)
        if self.plan.stateful_ops:
            raise UnsupportedContinuousQueryError(
                "continuous processing supports map-like queries only "
                "(no aggregations/joins between streams/stateful ops), "
                "as in Spark 2.3 (§6.3)"
            )
        if len(self.plan.sources) != 1:
            raise UnsupportedContinuousQueryError(
                "continuous processing supports exactly one input stream"
            )
        if not hasattr(sink, "append_rows"):
            raise UnsupportedContinuousQueryError(
                f"sink {type(sink).__name__} does not support continuous "
                "writes (needs append_rows)"
            )
        self.sink.set_key_names(self.plan.key_names)

        self.source_name, descriptor = self.plan.sources[0]
        self.source = descriptor.create()
        self.sources = {self.source_name: self.source}

        #: Flight recorder (§7.4): created before the WAL attaches so a
        #: crash during metadata write or recovery still leaves a
        #: postmortem in the checkpoint directory.
        self.flightrec = FlightRecorder(checkpoint_dir, engine="continuous")
        self.flightrec.adopt_prior_dumps()
        try:
            self.wal = WriteAheadLog(checkpoint_dir)
            self.wal.write_metadata(
                {"output_mode": output_mode, "mode": "continuous"})
        except Exception as exc:
            self._dump_crash("init-crash", exc)
            raise
        self.watermarks = WatermarkTracker(self.plan.watermark_delays)
        self.progress = ProgressReporter()

        #: Per-record event-time -> sink latency (§9.3's headline metric).
        #: Recorded vectorized per chunk against ``latency_column`` (a
        #: wall-clock stamp measured by ``latency_clock``): explicitly
        #: via ``.option("latency_column", ...)``, or auto-detected from
        #: a ``publish_time``/``send_time`` output column while the
        #: observability layer is enabled.  p50/p95/p99 surface through
        #: EpochProgress and the monitor CLI.
        self.latency_histogram = Histogram("continuous.record_latency_seconds")
        self._latency_clock = latency_clock
        self._latency_explicit = latency_column is not None
        names = set(self.plan.root.output_schema.names)
        if latency_column is not None:
            if latency_column not in names:
                raise ValueError(
                    f"latency_column {latency_column!r} is not an output "
                    f"column (have {sorted(names)})"
                )
            self._latency_col = latency_column
        else:
            self._latency_col = next(
                (c for c in ("publish_time", "send_time") if c in names), None)

        self._stop_event = threading.Event()
        self._workers = []
        self._master = None
        self._rows_reported = 0
        #: Set by a worker whose pipeline raised; re-raised to callers.
        self._worker_error = None
        self.next_epoch = 0
        #: Pre-bound chunk pipeline over the compiled operators: built
        #: once here, so the per-chunk hot path allocates no
        #: EpochContext and does no operator-tree dispatch (§6.3's
        #: "compiled stateless pipeline").  None -> EpochContext path.
        self._chunk_fn = self._build_chunk_pipeline(self.plan.root)
        self._start_offsets = self.source.initial_offsets()
        try:
            self._recover()
        except Exception as exc:
            self._dump_crash("init-crash", exc)
            raise
        self.flightrec.note("engine-start", mode="continuous",
                            next_epoch=self.next_epoch)

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Resume from the last committed epoch's end offsets."""
        last = self.wal.latest_committed_epoch()
        if last is None:
            return
        entry = self.wal.read_offsets(last)
        self._start_offsets = dict(entry["sources"][self.source_name]["end"])
        self.next_epoch = last + 1

    def _build_chunk_pipeline(self, op):
        """Bind the map-like operator tree into one chunk closure.

        Every supported operator shape gets a direct call path — the
        compiled StatelessOp pipeline, watermark observation, the
        delta-vs-static join — with no per-chunk context object.
        Returns ``None`` for shapes that still need the generic
        EpochContext path (e.g. unions with a static side).
        """
        if isinstance(op, ops.StreamScanOp):
            return lambda batch: batch
        if isinstance(op, ops.StatelessOp):
            inner = self._build_chunk_pipeline(op.child)
            if inner is None:
                return None
            return lambda batch: op.apply(inner(batch))
        if isinstance(op, ops.WatermarkTrackOp):
            inner = self._build_chunk_pipeline(op.child)
            if inner is None:
                return None
            watermarks = self.watermarks
            column = op.column

            def run_watermark(batch):
                batch = inner(batch)
                if batch.num_rows:
                    watermarks.observe(
                        column, float(np.max(batch.columns[column])))
                return batch

            return run_watermark
        if isinstance(op, ops.StreamStaticJoinOp):
            inner = self._build_chunk_pipeline(op.stream)
            if inner is None:
                return None
            return lambda batch: op.join_delta(inner(batch))
        return None

    def pipeline(self, batch):
        """Run one chunk through the stateless operator tree."""
        if self._chunk_fn is not None:
            return self._chunk_fn(batch)
        ctx = EpochContext(
            epoch_id=self.next_epoch,
            inputs={self.source_name: batch},
            watermarks=self.watermarks,
            processing_time=time.time(),
            output_mode=self.output_mode,
        )
        return self.plan.root.process(ctx)

    def record_latency(self, batch) -> None:
        """Record per-record delivery latency for one written chunk.

        Vectorized (one subtraction + bucket count per chunk); a no-op
        unless a latency column was resolved and either it was explicit
        or the observability layer is enabled — the continuous hot path
        stays untouched when monitoring is off.
        """
        column = self._latency_col
        if column is None or not (
                self._latency_explicit or observability.active()):
            return
        now = self._latency_clock()
        lags = now - np.asarray(batch.columns[column], dtype=np.float64)
        self.latency_histogram.record_many(np.maximum(lags, 0.0))
        registry = metrics.active()
        if registry is not None and registry.metric(
                self.latency_histogram.name) is not self.latency_histogram:
            registry.register(self.latency_histogram)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the per-partition workers and the epoch master."""
        for partition in self.source.partitions():
            worker = _PartitionWorker(
                self, partition, self._start_offsets.get(partition, 0)
            )
            self._workers.append(worker)
            worker.start()
        self._master = threading.Thread(
            target=self._master_loop, name="continuous-master", daemon=True
        )
        self._master.start()

    def _master_loop(self) -> None:
        """Periodically snapshot worker positions as committed epochs.

        The master asks for the workers' current positions, logs them as
        the epoch's end offsets, and commits — workers never block on it.
        A failure here (e.g. the WAL write dying) must reach the query
        handle like a worker failure would; before this was captured, a
        master crash killed the thread silently and the query hung with
        epochs no longer being committed.
        """
        try:
            while not self._stop_event.wait(self.epoch_interval):
                self._commit_epoch()
            self._commit_epoch()  # final epoch on shutdown
        except Exception as exc:
            self._worker_error = exc
            self._stop_event.set()

    def _commit_epoch(self) -> None:
        positions = {w.partition: w.position for w in self._workers}
        if all(positions[p] == self._start_offsets.get(p, 0) for p in positions):
            return  # nothing processed since the last epoch
        epoch = self.next_epoch
        started = time.perf_counter()
        with tracing.trace_span("epoch-marker", epoch=epoch):
            fault_point("continuous.commit_epoch", epoch=epoch)
            self.wal.write_offsets(epoch, {
                "sources": {
                    self.source_name: {
                        "start": dict(self._start_offsets), "end": positions
                    }
                },
                "watermarks": self.watermarks.to_json(),
                "trigger_time": time.time(),
            })
            fault_point("continuous.after_offsets", epoch=epoch)
            self.wal.write_commit(epoch)
        input_rows = sum(
            positions[p] - self._start_offsets.get(p, 0) for p in positions
        )
        self._start_offsets = positions
        self.next_epoch = epoch + 1
        total_written = sum(w.rows_written for w in self._workers)
        output_rows = total_written - self._rows_reported
        self._rows_reported = total_written
        metrics.count("continuous.epoch_markers")
        metrics.count("engine.rows_in", input_rows)
        progress = EpochProgress(
            epoch_id=epoch,
            trigger_time=time.time(),
            duration_seconds=time.perf_counter() - started,
            input_rows=input_rows,
            output_rows=output_rows,
            backlog_rows=self._backlog(positions),
            state_keys=0,
            late_rows_dropped=0,
            latency_percentiles=self.latency_histogram.percentiles_json(),
        )
        self.progress.record(progress)
        self.flightrec.record_epoch(progress)

    def _backlog(self, positions: dict) -> int:
        latest = self.source.latest_offsets()
        return sum(max(latest[p] - positions.get(p, 0), 0) for p in latest)

    def run_epoch(self):
        """Interval-trigger entry point (no-op: workers run continuously)."""
        self._raise_worker_error()
        return None

    def run_available(self):
        """Block until the source is drained (workers keep running)."""
        while self._backlog({w.partition: w.position for w in self._workers}):
            self._raise_worker_error()
            time.sleep(0.001)
        self._raise_worker_error()
        return []

    def _dump_crash(self, reason: str, error) -> None:
        """Leave a postmortem behind for a failure; never raises."""
        rec = getattr(self, "flightrec", None)
        if rec is not None:
            rec.dump(reason, error=error,
                     epoch=getattr(self, "next_epoch", None))

    def _raise_worker_error(self) -> None:
        if self._worker_error is not None:
            # Identity-deduped inside the recorder, so the repeated
            # re-raises (run_epoch, run_available, stop) dump once.
            self._dump_crash("worker-crash", self._worker_error)
            raise self._worker_error

    def stop(self) -> None:
        """Stop workers and the master; commits a final epoch."""
        self._stop_event.set()
        for worker in self._workers:
            worker.join()
        if self._master is not None:
            self._master.join(timeout=10)
        self._raise_worker_error()
