"""Session windows built on ``flat_map_groups_with_state`` (§4.3.2).

The paper's motivating example for custom stateful processing is
"custom session-based windows": variable-length windows that close after
a gap of inactivity.  This module packages that pattern — the advanced
user code of Figure 3, generalized — as a reusable helper::

    sessions = session_windows(
        events.with_watermark("t", "10 seconds"),
        key_columns=["user_id"], time_column="t", gap="30 seconds")

Each emitted row is a closed session: the key columns plus
``session_start``, ``session_end`` and ``events`` (row count).  A
session closes when the event-time watermark passes its end + gap, so
results are final (append semantics).

Within-session ordering: rows are folded in event-time order inside each
epoch; a record arriving in a later epoch still extends the session as
long as it falls within the gap of the tracked bounds (anything later is
bounded by the watermark, as usual).
"""

from __future__ import annotations

from repro.sql.expressions import parse_duration
from repro.sql.types import StructType


def session_windows(df, key_columns, time_column: str, gap):
    """Aggregate a stream into gap-separated sessions per key.

    ``df`` must have a watermark on ``time_column`` (the helper uses
    event-time timeouts to close idle sessions).  Returns a streaming
    DataFrame of closed sessions, to be run in append or update mode.
    """
    gap_seconds = parse_duration(gap)
    key_columns = list(key_columns)
    key_schema = df.schema.select(key_columns)
    output_schema = StructType(tuple(
        [(f.name, f.data_type) for f in key_schema]
        + [("session_start", "timestamp"), ("session_end", "timestamp"),
           ("events", "long")]
    ))

    def update_func(key, rows, state):
        closed = []
        if state.has_timed_out:
            session = state.get()
            state.remove()
            return [_emit(session)]

        current = state.get_option()
        for row in sorted(rows, key=lambda r: r[time_column]):
            t = row[time_column]
            if current is None:
                current = {"start": t, "end": t, "n": 1}
            elif t <= current["end"] + gap_seconds:
                current["end"] = max(current["end"], t)
                current["start"] = min(current["start"], t)
                current["n"] += 1
            else:
                closed.append(_emit(current))
                current = {"start": t, "end": t, "n": 1}

        if current is not None:
            deadline = current["end"] + gap_seconds
            watermark = state.current_watermark
            if watermark is not None and deadline <= watermark:
                # The gap already elapsed in event time: close now.
                closed.append(_emit(current))
                state.remove()
            else:
                state.update(current)
                try:
                    state.set_timeout_timestamp(deadline)
                except ValueError:
                    closed.append(_emit(current))
                    state.remove()
        return closed

    def _emit(session):
        return {
            "session_start": session["start"],
            "session_end": session["end"],
            "events": session["n"],
        }

    return (df.group_by_key(*key_columns)
            .flat_map_groups_with_state(update_func, output_schema,
                                        timeout="event_time"))
