"""Versioned state store with incremental (delta) checkpoints (§6.1).

The store holds each stateful operator's keyed state and persists it
under ``<checkpoint>/state/<operator>/``:

* ``<version>.delta.json`` — the keys written/removed since the previous
  version (incremental checkpoint);
* ``<version>.snapshot.json`` — a full snapshot, written every
  ``snapshot_interval`` versions to bound recovery replay.

``restore(version)`` loads the nearest snapshot at or below the target
and replays deltas — this is what enables both crash recovery and manual
rollback to *any* retained epoch (§7.2).  Keys are JSON-encoded tuples,
values any JSON-serializable object, keeping the on-disk format as
human-readable as the paper's WAL.

In-memory the handle is **hash-partitioned** into ``num_shards``
shared-nothing shards (dict + expiry heap each), routed by the stable
key hash from :mod:`repro.sql.batch` — the same hash the partitioned
epoch executor uses to split input deltas, so a shard task only ever
touches one shard's structures.  The on-disk format stays *merged* and
canonically sorted (``atomic_write_json`` sorts keys), which makes
checkpoint bytes independent of the shard count; ``restore`` re-routes
every key through the current shard function, so recovering an N-shard
checkpoint into an M-shard handle is exact rescaling (§6.2).
"""

from __future__ import annotations

import heapq
import json
import os

from repro.observability import metrics
from repro.sql.batch import shard_of_key
from repro.storage import (
    atomic_write_json,
    group_write_text,
    list_files,
    read_json,
    repair_torn_tail,
)
from repro.testing.faults import fault_point


class PendingStateWrite:
    """A state checkpoint captured now, to be written by the flusher.

    The pipelined engine calls :meth:`OperatorStateHandle.prepare_commit`
    on the epoch thread — the payload is *serialized* there, so writes
    from later epochs cannot leak into it — and hands this job to the
    background flusher, which performs the file write under the shared
    :class:`~repro.storage.SyncGroup`.  The bytes written are identical
    to a synchronous :meth:`OperatorStateHandle.commit`.

    Backends that persist at prepare time (the tiered/LSM handle writes
    its runs and manifest on the epoch thread with fsyncs deferred into
    the group) return a job with ``path=None``: executing it is a no-op
    and only the group sync remains for the flusher.
    """

    __slots__ = ("report", "path", "text", "operator", "version")

    def __init__(self, report, path=None, text=None, operator="", version=0):
        self.report = report
        self.path = path
        self.text = text
        self.operator = operator
        self.version = version

    def execute(self, group) -> None:
        """Perform the deferred write (flusher thread)."""
        if self.path is None:
            return
        fault_point("state.commit", version=self.version,
                    operator=self.operator)
        group_write_text(self.path, self.text, group)
        self.text = None  # free the serialized payload


def encode_key(key) -> str:
    """Encode a key (scalar or tuple) as a canonical JSON string."""
    if isinstance(key, tuple):
        return json.dumps(list(key))
    return json.dumps(key)


def _cache_key(key):
    """A hashable cache key that distinguishes types JSON encodes
    differently but Python hashes identically (1 vs 1.0 vs True)."""
    if isinstance(key, tuple):
        return (key, tuple(type(v) for v in key))
    return (key, type(key))


def decode_key(text: str):
    """Invert :func:`encode_key` (lists become tuples)."""
    value = json.loads(text)
    if isinstance(value, list):
        return tuple(value)
    return value


class _StateShard:
    """One hash partition of an operator's keyed state: its own data
    dict, dirty tracking and expiry index — no locks, no sharing."""

    __slots__ = ("data", "dirty", "removed", "pending", "expiry", "heap",
                 "puts_metric", "gets_metric", "evictions_metric")

    def __init__(self, index: int = 0):
        self.data = {}
        self.dirty = set()
        self.removed = set()
        #: Keys written/removed since the last state-sync ship to the
        #: worker owning this shard (None unless journaling is enabled
        #: by the process executor; see ``enable_journal``).
        self.pending = None
        #: encoded key -> currently valid expiry (heap entries that
        #: disagree with this map are stale and dropped lazily).
        self.expiry = {}
        self.heap = []
        #: Pre-formatted per-shard metric names (§2.3 monitoring): the
        #: hot-path cost with metrics enabled is one dict hit per
        #: access, with no string formatting.
        self.puts_metric = f"state.puts.shard{index}"
        self.gets_metric = f"state.gets.shard{index}"
        self.evictions_metric = f"state.evictions.shard{index}"


def _make_shards(num_shards: int) -> list:
    return [_StateShard(i) for i in range(num_shards)]


class OperatorStateHandle:
    """One operator's keyed state, with dirty tracking for delta commits.

    Hot-path structures keep per-access cost independent of total state
    size (the delta-proportionality the paper claims in §5.2/§6.1):

    * an **interned-key cache** so ``encode_key``'s ``json.dumps`` and
      the shard hash run once per distinct key, not once per access;
    * per-shard **expiry indexes** (min-heaps with lazy invalidation,
      maintained on ``put``/``remove``) so watermark-gated operators pop
      only finalized keys instead of scanning the full store.

    None of these structures is persisted: the on-disk checkpoint format
    is unchanged (and shard-count independent), and the indexes are
    rebuilt from data on ``restore``.
    """

    #: Checkpoint kinds this backend can restore from.  The tiered
    #: backend overrides this to add ``manifest``; keeping the base
    #: restore blind to unknown kinds is what makes a checkpoint
    #: directory written by one backend readable by the other.
    _RESTORE_KINDS = frozenset({"snapshot", "delta"})

    def __init__(self, directory: str, snapshot_interval: int = 10,
                 num_shards: int = 1):
        self._directory = directory
        self._snapshot_interval = max(1, snapshot_interval)
        self.num_shards = max(1, num_shards)
        self._shards = _make_shards(self.num_shards)
        self._key_cache = {}
        self._expiry_fn = None
        self.last_committed_version = None
        os.makedirs(directory, exist_ok=True)
        #: A crash mid-commit can leave the newest checkpoint file torn
        #: (visible but truncated); quarantining it on open makes
        #: restore fall back to the previous version, which recovery
        #: then replays forward from the WAL — instead of the restart
        #: dying on unreadable JSON every time.
        self.repaired = repair_torn_tail(directory)

    # ------------------------------------------------------------------
    # Keyed access (in-memory working state)
    # ------------------------------------------------------------------
    def shard_index(self, key) -> int:
        """The shard a key routes to (0 when unsharded)."""
        if self.num_shards == 1:
            return 0
        return shard_of_key(
            key if isinstance(key, tuple) else (key,), self.num_shards
        )

    def _locate(self, key):
        """Resolve a key to its ``(shard, encoded)`` once, then cache."""
        cache_key = _cache_key(key)
        located = self._key_cache.get(cache_key)
        if located is None:
            if len(self._key_cache) > max(4096, 4 * len(self)):
                self._key_cache.clear()
            located = (self._shards[self.shard_index(key)], encode_key(key))
            self._key_cache[cache_key] = located
        return located

    def encoded(self, key) -> str:
        """The canonical encoded form of a key (cached)."""
        return self._locate(key)[1]

    def get(self, key, default=None):
        """Value for a key, or default."""
        shard, encoded = self._locate(key)
        if metrics._registry is not None:
            metrics._registry.counter(shard.gets_metric).inc()
        return shard.data.get(encoded, default)

    def contains(self, key) -> bool:
        """True if the key has state."""
        shard, encoded = self._locate(key)
        return encoded in shard.data

    def put(self, key, value) -> None:
        """Set a key's state (JSON-serializable value)."""
        shard, encoded = self._locate(key)
        if metrics._registry is not None:
            metrics._registry.counter(shard.puts_metric).inc()
        shard.data[encoded] = value
        shard.dirty.add(encoded)
        shard.removed.discard(encoded)
        if shard.pending is not None:
            shard.pending.add(encoded)
        if self._expiry_fn is not None:
            self._index_put(shard, encoded, key, value)

    def remove(self, key) -> None:
        """Delete a key's state."""
        shard, encoded = self._locate(key)
        if encoded in shard.data:
            del shard.data[encoded]
            shard.dirty.discard(encoded)
            shard.removed.add(encoded)
            if shard.pending is not None:
                shard.pending.add(encoded)
            shard.expiry.pop(encoded, None)
            metrics.count("state.removes")

    # ------------------------------------------------------------------
    # State-sync journal (process executor, §6.2)
    # ------------------------------------------------------------------
    # The process executor's workers keep a per-shard replica of this
    # handle (inherited at fork).  The driver stays authoritative — it
    # applies every deferred write itself — and ships each worker, at
    # the next stage touching this handle, only the keys written or
    # removed since the last ship.  Deltas are *snapshots* (the key's
    # current value at ship time), so re-applying one after a worker
    # respawn is a no-op; that idempotence is what keeps retry and
    # recovery logic trivial.

    def enable_journal(self) -> None:
        """Start journaling writes per shard for worker state sync.

        Must be called once the handle's state is final for the fork
        (the pool binds after engine recovery); a later ``restore``
        resets the journals, at which point the pool re-forks workers
        rather than replaying deltas.
        """
        self._journaled = True
        for shard in self._shards:
            shard.pending = set()

    def collect_sync_delta(self) -> dict:
        """Drain the journal: ``{shard_index: (puts, removes)}``.

        ``puts`` maps encoded key -> its *current* value (a snapshot,
        not the historical write), ``removes`` lists encoded keys no
        longer present.  Shards with an empty journal are omitted.  The
        caller must deliver the delta to each shard's owning worker —
        the journal is cleared here.
        """
        deltas = {}
        for index, shard in enumerate(self._shards):
            if not shard.pending:
                continue
            puts = {}
            removes = []
            for encoded in shard.pending:
                if encoded in shard.data:
                    puts[encoded] = shard.data[encoded]
                else:
                    removes.append(encoded)
            deltas[index] = (puts, sorted(removes))
            shard.pending = set()
        return deltas

    def sync_residual(self) -> dict:
        """Uncommitted changes relative to ``last_committed_version``:
        same shape as :meth:`collect_sync_delta`, without draining
        anything.  A respawned worker restores the last checkpoint from
        disk and applies this on top, reproducing the driver's current
        state exactly."""
        deltas = {}
        for index, shard in enumerate(self._shards):
            if not shard.dirty and not shard.removed:
                continue
            puts = {encoded: shard.data[encoded] for encoded in shard.dirty}
            deltas[index] = (puts, sorted(shard.removed))
        return deltas

    def apply_sync_delta(self, shard_index: int, puts: dict, removes) -> None:
        """Worker-side: overwrite one shard's replica with a sync delta.

        Writes raw encoded keys/values into the shard dict.  The expiry
        index is *not* maintained: shard tasks only ever ``get``/
        ``contains`` — eviction (``pop_expired``) runs on the driver.
        Dirty tracking is untouched too; worker replicas never commit.
        """
        shard = self._shards[shard_index]
        for encoded, value in puts.items():
            shard.data[encoded] = value
        for encoded in removes:
            shard.data.pop(encoded, None)

    # ------------------------------------------------------------------
    # Expiry index (watermark eviction without full scans)
    # ------------------------------------------------------------------
    def set_expiry(self, fn) -> None:
        """Register ``fn(decoded_key, value) -> expiry | None`` and index
        existing state.  With an expiry function set, ``pop_expired`` and
        ``next_expiry`` answer watermark questions in O(expired log n)
        rather than O(total keys)."""
        self._expiry_fn = fn
        self._rebuild_expiry_index()

    def _rebuild_expiry_index(self) -> None:
        for shard in self._shards:
            shard.expiry = {}
            shard.heap = []
            if self._expiry_fn is None:
                continue
            for encoded, value in shard.data.items():
                expiry = self._expiry_fn(decode_key(encoded), value)
                if expiry is not None:
                    shard.expiry[encoded] = expiry
                    shard.heap.append((expiry, encoded))
            heapq.heapify(shard.heap)

    def _index_put(self, shard: _StateShard, encoded: str, key, value) -> None:
        expiry = self._expiry_fn(key, value)
        if expiry is None:
            shard.expiry.pop(encoded, None)
        elif shard.expiry.get(encoded) != expiry:
            shard.expiry[encoded] = expiry
            heapq.heappush(shard.heap, (expiry, encoded))

    def reindex(self, key) -> None:
        """Re-register a key's expiry from its current value without
        marking it dirty (used to defer a popped-but-unhandled key)."""
        if self._expiry_fn is None:
            return
        shard, encoded = self._locate(key)
        if encoded in shard.data:
            self._index_put(shard, encoded, key, shard.data[encoded])

    def next_expiry(self):
        """The smallest live expiry, or None (O(stale) amortized)."""
        earliest = None
        for shard in self._shards:
            heap = shard.heap
            while heap:
                expiry, encoded = heap[0]
                if shard.expiry.get(encoded) == expiry:
                    if earliest is None or expiry < earliest:
                        earliest = expiry
                    break
                heapq.heappop(heap)
        return earliest

    def pop_expired(self, bound) -> list:
        """Pop and return ``[(decoded_key, value), ...]`` for every key
        whose expiry is <= ``bound``.

        Popped keys leave the index but not the store: the caller decides
        to ``remove`` them, ``put`` them back (re-indexing under a new
        expiry), or ``reindex`` to defer untouched.  Results merge the
        per-shard pops back into global ``(expiry, encoded)`` order — the
        exact order a single shared heap would pop — so callers see the
        same sequence at every shard count."""
        popped = []
        for shard in self._shards:
            heap = shard.heap
            shard_popped = 0
            while heap and heap[0][0] <= bound:
                expiry, encoded = heapq.heappop(heap)
                if shard.expiry.get(encoded) != expiry:
                    continue  # stale entry: superseded or removed
                del shard.expiry[encoded]
                popped.append((expiry, encoded, shard.data[encoded]))
                shard_popped += 1
            if shard_popped:
                metrics.count(shard.evictions_metric, shard_popped)
        popped.sort(key=lambda item: item[:2])
        return [(decode_key(encoded), value) for _, encoded, value in popped]

    def items(self):
        """Iterate (decoded_key, value) pairs of the working state.

        Order is per-shard insertion order; callers needing an order
        independent of the shard count must sort (e.g. by encoded key).
        """
        for shard in self._shards:
            for encoded, value in shard.data.items():
                yield decode_key(encoded), value

    def keys(self):
        """Iterate decoded keys."""
        for shard in self._shards:
            for encoded in shard.data:
                yield decode_key(encoded)

    def __len__(self) -> int:
        return sum(len(shard.data) for shard in self._shards)

    # ------------------------------------------------------------------
    # Versioned persistence
    # ------------------------------------------------------------------
    def _path(self, version: int, kind: str) -> str:
        return os.path.join(self._directory, f"{version:010d}.{kind}.json")

    def commit(self, version: int) -> dict:
        """Checkpoint the working state as ``version``.

        Writes a delta of dirty/removed keys; every ``snapshot_interval``
        versions writes a full snapshot instead.  Shards are merged into
        one canonically-sorted document, so the bytes written do not
        depend on the shard count.  Returns checkpoint metrics (sizes)
        for monitoring (§7.4).
        """
        fault_point("state.commit", version=version,
                    operator=os.path.basename(self._directory))
        kind, payload, written = self._commit_payload(version)
        atomic_write_json(self._path(version, kind), payload)
        return self._finish_commit(version, written)

    def _commit_payload(self, version: int):
        """Build version's checkpoint document: (kind, payload, keys)."""
        if version % self._snapshot_interval == 0:
            data = {}
            for shard in self._shards:
                data.update(shard.data)
            return "snapshot", {"kind": "snapshot", "data": data}, len(data)
        puts = {}
        removes = set()
        for shard in self._shards:
            for encoded in shard.dirty:
                puts[encoded] = shard.data[encoded]
            removes.update(shard.removed)
        payload = {
            "kind": "delta",
            "puts": puts,
            "removes": sorted(removes),
        }
        return "delta", payload, len(puts) + len(removes)

    def _finish_commit(self, version: int, written: int) -> dict:
        for shard in self._shards:
            shard.dirty.clear()
            shard.removed.clear()
        self.last_committed_version = version
        return {"version": version, "keys_written": written,
                "num_keys": len(self)}

    def prepare_commit(self, version: int, group) -> PendingStateWrite:
        """Capture version's checkpoint now; the write happens later.

        Serializes the same bytes :meth:`commit` would write (payloads
        hold references to live values, so serialization cannot be
        deferred past the next epoch's mutations) and advances the
        dirty/removed journals exactly as a synchronous commit does.
        The returned job writes the file under ``group`` on the
        pipelined engine's flusher thread.
        """
        kind, payload, written = self._commit_payload(version)
        text = json.dumps(payload, indent=2, sort_keys=True)
        report = self._finish_commit(version, written)
        return PendingStateWrite(
            report, path=self._path(version, kind), text=text,
            operator=os.path.basename(self._directory), version=version)

    def _available_versions(self) -> dict:
        """Map version -> kind for all checkpoint files on disk."""
        versions = {}
        for name in list_files(self._directory, ".json"):
            stem = name[: -len(".json")]
            version_text, _, kind = stem.partition(".")
            versions.setdefault(int(version_text), set()).add(kind)
        return versions

    def _usable_versions(self, limit) -> list:
        """Sorted versions <= ``limit`` this backend can restore from."""
        versions = self._available_versions()
        return sorted(
            v for v, kinds in versions.items()
            if v <= limit and kinds & self._RESTORE_KINDS
        )

    def latest_version(self):
        """Newest checkpointed version on disk, or None."""
        versions = self._available_versions()
        return max(versions) if versions else None

    def oldest_restorable_version(self):
        """Oldest version restore() can rebuild: the oldest snapshot on
        disk (deltas older than every snapshot cannot anchor a restore),
        or the oldest delta when the chain starts from empty state."""
        versions = self._available_versions()
        if not versions:
            return None
        snapshots = [v for v, kinds in versions.items() if "snapshot" in kinds]
        if min(versions) < min(snapshots, default=float("inf")):
            # The chain still starts from empty state: everything works.
            return min(versions)
        return min(snapshots) if snapshots else None

    def prune(self, keep_from_version: int) -> int:
        """Garbage-collect checkpoints no longer needed to restore any
        version >= ``keep_from_version``.

        Keeps the newest snapshot at or below the horizon plus everything
        after it (deltas replay from that snapshot).  Returns the number
        of files deleted.  Without pruning, a long-running query's state
        directory grows forever (§6.1's checkpoints are periodic for
        exactly this reason).
        """
        versions = self._available_versions()
        snapshots = sorted(
            v for v, kinds in versions.items()
            if "snapshot" in kinds and v <= keep_from_version
        )
        if not snapshots:
            return 0
        base = snapshots[-1]
        removed = 0
        for v, kinds in versions.items():
            for kind in kinds:
                if v < base or (v == base and kind == "delta"):
                    path = self._path(v, kind)
                    if os.path.exists(path):
                        os.unlink(path)
                        removed += 1
        return removed

    def restore(self, version):
        """Reset the working state to the newest checkpoint <= ``version``.

        Deltas are relative to the previous *commit* (not the previous
        epoch), so sparse version numbers — from a checkpoint interval
        larger than one epoch — replay correctly.  Returns the version
        actually restored (None for empty state); the engine replays
        input epochs after it from the WAL to reach the target (§6.1
        step 4).

        Every restored key is re-routed through the *current* shard
        function, so a checkpoint written at one shard count restores
        exactly into a handle with any other (rescaling, §6.2).
        """
        self._shards = _make_shards(self.num_shards)
        self._key_cache.clear()
        self.last_committed_version = None
        if version is None:
            self._rebuild_expiry_index()
            return None
        versions = self._available_versions()
        usable = self._usable_versions(version)
        if not usable:
            self._rebuild_expiry_index()
            return None
        # Newest snapshot at or below the target is the replay base.
        base = None
        for v in reversed(usable):
            if "snapshot" in versions[v]:
                base = v
                break
        merged = {}
        if base is not None:
            merged = dict(read_json(self._path(base, "snapshot"))["data"])
        for v in usable:
            if base is not None and v <= base:
                continue
            delta = read_json(self._path(v, "delta"))
            merged.update(delta["puts"])
            for key in delta["removes"]:
                merged.pop(key, None)
        for encoded, value in merged.items():
            shard = self._shards[self.shard_index(decode_key(encoded))]
            shard.data[encoded] = value
        self.last_committed_version = usable[-1]
        self._rebuild_expiry_index()
        return usable[-1]


class StateStore:
    """All operators' state for one query, under ``<checkpoint>/state``.

    ``backend`` selects the storage engine per handle: ``"dict"`` (the
    in-memory default) or ``"tiered"`` (LSM memtable + sorted runs, see
    :mod:`repro.streaming.state_lsm`), defaulting from the
    ``REPRO_STATE_BACKEND`` environment variable.  Both backends read
    each other's checkpoints, so the choice can change across restarts.
    """

    def __init__(self, checkpoint_dir: str, snapshot_interval: int = 10,
                 num_shards: int = 1, backend: str = None,
                 memtable_bytes: int = None):
        self._directory = os.path.join(checkpoint_dir, "state")
        self._snapshot_interval = snapshot_interval
        self._num_shards = max(1, num_shards)
        if backend is None:
            backend = os.environ.get("REPRO_STATE_BACKEND") or "dict"
        if backend not in ("dict", "tiered"):
            raise ValueError(
                f"unknown state backend {backend!r}; expected 'dict' or 'tiered'"
            )
        self.backend = backend
        self._memtable_bytes = memtable_bytes
        self._handles = {}
        os.makedirs(self._directory, exist_ok=True)

    def handle(self, operator_id: str) -> OperatorStateHandle:
        """Get (or create) the state handle for an operator."""
        if operator_id not in self._handles:
            directory = os.path.join(self._directory, operator_id)
            if self.backend == "tiered":
                # Imported lazily: state_lsm depends on this module.
                from repro.streaming.state_lsm import TieredOperatorStateHandle

                self._handles[operator_id] = TieredOperatorStateHandle(
                    directory, self._snapshot_interval, self._num_shards,
                    memtable_bytes=self._memtable_bytes,
                )
            else:
                self._handles[operator_id] = OperatorStateHandle(
                    directory, self._snapshot_interval, self._num_shards,
                )
        return self._handles[operator_id]

    def commit_all(self, version: int) -> list:
        """Checkpoint every operator at ``version``; returns metrics.

        The fault point between operators models a crash that leaves
        some operators checkpointed at ``version`` and the rest behind —
        the skew :meth:`restore_all` must reconcile.
        """
        reports = []
        for i, (operator_id, handle) in enumerate(self._handles.items()):
            reports.append(handle.commit(version))
            fault_point("state.commit_all", version=version,
                        operator=operator_id, committed=i + 1,
                        total=len(self._handles))
        return reports

    def prepare_commit_all(self, version: int, group) -> list:
        """Pipelined ``commit_all``: capture every operator's checkpoint
        on the calling (epoch) thread, returning the deferred write jobs
        in operator order for the async flusher.  The in-memory effects
        (journals cleared, ``last_committed_version`` advanced) happen
        here, so the engine's view is identical to a synchronous commit;
        only durability lags, which recovery already tolerates via
        ``state_checkpoint_interval`` replay."""
        return [
            handle.prepare_commit(version, group)
            for handle in self._handles.values()
        ]

    def restore_all(self, version):
        """Restore every operator to one *consistent* version <= ``version``.

        A crash can land mid-``commit_all``, leaving operators with
        different newest checkpoints; replaying from the lagging
        operator's version would double-apply epochs to the others.  So
        the common base is computed first — the oldest "newest checkpoint
        <= version" across operators — and every operator restores to
        exactly that.  Returns the base (None if any operator has no
        usable checkpoint; state is then empty and replay starts from
        epoch 0).
        """
        handles = list(self._handles.values())
        if not handles:
            return version
        newest = []
        for handle in handles:
            versions = handle._usable_versions(version)
            newest.append(max(versions) if versions else None)
        if any(v is None for v in newest):
            for handle in handles:
                handle.restore(None)
            return None
        base = min(newest)
        for handle in handles:
            restored = handle.restore(base)
            assert restored == base, (
                f"operator checkpoint missing at consistent base {base}"
            )
        return base

    def prune_all(self, keep_from_version: int) -> int:
        """Prune every operator's old checkpoints; returns files removed."""
        return sum(h.prune(keep_from_version) for h in self._handles.values())

    def oldest_restorable_version(self):
        """Oldest version restorable by *every* operator (None if any
        operator has no checkpoints)."""
        oldest = [h.oldest_restorable_version() for h in self._handles.values()]
        if not oldest or any(v is None for v in oldest):
            return None
        return max(oldest)

    def latest_complete_version(self):
        """Newest version checkpointed by *all* operators, or None."""
        latests = [h.latest_version() for h in self._handles.values()]
        if not latests or any(v is None for v in latests):
            return None
        return min(latests)

    def total_keys(self) -> int:
        """Total keys across operators (a monitoring metric, §2.3)."""
        return sum(len(h) for h in self._handles.values())
