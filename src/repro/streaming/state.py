"""Versioned state store with incremental (delta) checkpoints (§6.1).

The store holds each stateful operator's keyed state and persists it
under ``<checkpoint>/state/<operator>/``:

* ``<version>.delta.json`` — the keys written/removed since the previous
  version (incremental checkpoint);
* ``<version>.snapshot.json`` — a full snapshot, written every
  ``snapshot_interval`` versions to bound recovery replay.

``restore(version)`` loads the nearest snapshot at or below the target
and replays deltas — this is what enables both crash recovery and manual
rollback to *any* retained epoch (§7.2).  Keys are JSON-encoded tuples,
values any JSON-serializable object, keeping the on-disk format as
human-readable as the paper's WAL.
"""

from __future__ import annotations

import heapq
import json
import os

from repro.storage import atomic_write_json, list_files, read_json


def encode_key(key) -> str:
    """Encode a key (scalar or tuple) as a canonical JSON string."""
    if isinstance(key, tuple):
        return json.dumps(list(key))
    return json.dumps(key)


def _cache_key(key):
    """A hashable cache key that distinguishes types JSON encodes
    differently but Python hashes identically (1 vs 1.0 vs True)."""
    if isinstance(key, tuple):
        return (key, tuple(type(v) for v in key))
    return (key, type(key))


def decode_key(text: str):
    """Invert :func:`encode_key` (lists become tuples)."""
    value = json.loads(text)
    if isinstance(value, list):
        return tuple(value)
    return value


class OperatorStateHandle:
    """One operator's keyed state, with dirty tracking for delta commits.

    Two hot-path structures keep per-access cost independent of total
    state size (the delta-proportionality the paper claims in §5.2/§6.1):

    * an **interned-key cache** so ``encode_key``'s ``json.dumps`` runs
      once per distinct key, not once per ``get``/``put``/``contains``;
    * an optional **expiry index** (min-heap with lazy invalidation,
      maintained on ``put``/``remove``) so watermark-gated operators pop
      only finalized keys instead of scanning the full store.

    Neither structure is persisted: the on-disk checkpoint format is
    unchanged, and the index is rebuilt from data on ``restore``.
    """

    def __init__(self, directory: str, snapshot_interval: int = 10):
        self._directory = directory
        self._snapshot_interval = max(1, snapshot_interval)
        self._data = {}
        self._dirty = set()
        self._removed = set()
        self._key_cache = {}
        self._expiry_fn = None
        #: encoded key -> currently valid expiry (heap entries that
        #: disagree with this map are stale and dropped lazily).
        self._expiry = {}
        self._heap = []
        self.last_committed_version = None
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Keyed access (in-memory working state)
    # ------------------------------------------------------------------
    def _encode(self, key) -> str:
        cache_key = _cache_key(key)
        encoded = self._key_cache.get(cache_key)
        if encoded is None:
            if len(self._key_cache) > max(4096, 4 * len(self._data)):
                self._key_cache.clear()
            encoded = encode_key(key)
            self._key_cache[cache_key] = encoded
        return encoded

    def get(self, key, default=None):
        """Value for a key, or default."""
        return self._data.get(self._encode(key), default)

    def contains(self, key) -> bool:
        """True if the key has state."""
        return self._encode(key) in self._data

    def put(self, key, value) -> None:
        """Set a key's state (JSON-serializable value)."""
        encoded = self._encode(key)
        self._data[encoded] = value
        self._dirty.add(encoded)
        self._removed.discard(encoded)
        if self._expiry_fn is not None:
            self._index_put(encoded, key, value)

    def remove(self, key) -> None:
        """Delete a key's state."""
        encoded = self._encode(key)
        if encoded in self._data:
            del self._data[encoded]
            self._dirty.discard(encoded)
            self._removed.add(encoded)
            self._expiry.pop(encoded, None)

    # ------------------------------------------------------------------
    # Expiry index (watermark eviction without full scans)
    # ------------------------------------------------------------------
    def set_expiry(self, fn) -> None:
        """Register ``fn(decoded_key, value) -> expiry | None`` and index
        existing state.  With an expiry function set, ``pop_expired`` and
        ``next_expiry`` answer watermark questions in O(expired log n)
        rather than O(total keys)."""
        self._expiry_fn = fn
        self._rebuild_expiry_index()

    def _rebuild_expiry_index(self) -> None:
        self._expiry = {}
        self._heap = []
        if self._expiry_fn is None:
            return
        for encoded, value in self._data.items():
            expiry = self._expiry_fn(decode_key(encoded), value)
            if expiry is not None:
                self._expiry[encoded] = expiry
                self._heap.append((expiry, encoded))
        heapq.heapify(self._heap)

    def _index_put(self, encoded: str, key, value) -> None:
        expiry = self._expiry_fn(key, value)
        if expiry is None:
            self._expiry.pop(encoded, None)
        elif self._expiry.get(encoded) != expiry:
            self._expiry[encoded] = expiry
            heapq.heappush(self._heap, (expiry, encoded))

    def reindex(self, key) -> None:
        """Re-register a key's expiry from its current value without
        marking it dirty (used to defer a popped-but-unhandled key)."""
        if self._expiry_fn is None:
            return
        encoded = self._encode(key)
        if encoded in self._data:
            self._index_put(encoded, key, self._data[encoded])

    def next_expiry(self):
        """The smallest live expiry, or None (O(stale) amortized)."""
        heap = self._heap
        while heap:
            expiry, encoded = heap[0]
            if self._expiry.get(encoded) == expiry:
                return expiry
            heapq.heappop(heap)
        return None

    def pop_expired(self, bound) -> list:
        """Pop and return ``[(decoded_key, value), ...]`` for every key
        whose expiry is <= ``bound``.

        Popped keys leave the index but not the store: the caller decides
        to ``remove`` them, ``put`` them back (re-indexing under a new
        expiry), or ``reindex`` to defer untouched."""
        heap = self._heap
        popped = []
        while heap and heap[0][0] <= bound:
            expiry, encoded = heapq.heappop(heap)
            if self._expiry.get(encoded) != expiry:
                continue  # stale entry: superseded or removed
            del self._expiry[encoded]
            popped.append((decode_key(encoded), self._data[encoded]))
        return popped

    def items(self):
        """Iterate (decoded_key, value) pairs of the working state."""
        for encoded, value in self._data.items():
            yield decode_key(encoded), value

    def keys(self):
        """Iterate decoded keys."""
        for encoded in self._data:
            yield decode_key(encoded)

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Versioned persistence
    # ------------------------------------------------------------------
    def _path(self, version: int, kind: str) -> str:
        return os.path.join(self._directory, f"{version:010d}.{kind}.json")

    def commit(self, version: int) -> dict:
        """Checkpoint the working state as ``version``.

        Writes a delta of dirty/removed keys; every ``snapshot_interval``
        versions writes a full snapshot instead.  Returns checkpoint
        metrics (sizes) for monitoring (§7.4).
        """
        snapshot_due = version % self._snapshot_interval == 0
        if snapshot_due:
            payload = {"kind": "snapshot", "data": self._data}
            atomic_write_json(self._path(version, "snapshot"), payload)
            written = len(self._data)
        else:
            payload = {
                "kind": "delta",
                "puts": {k: self._data[k] for k in self._dirty},
                "removes": sorted(self._removed),
            }
            atomic_write_json(self._path(version, "delta"), payload)
            written = len(self._dirty) + len(self._removed)
        self._dirty.clear()
        self._removed.clear()
        self.last_committed_version = version
        return {"version": version, "keys_written": written, "num_keys": len(self._data)}

    def _available_versions(self) -> dict:
        """Map version -> kind for all checkpoint files on disk."""
        versions = {}
        for name in list_files(self._directory, ".json"):
            stem = name[: -len(".json")]
            version_text, _, kind = stem.partition(".")
            versions.setdefault(int(version_text), set()).add(kind)
        return versions

    def latest_version(self):
        """Newest checkpointed version on disk, or None."""
        versions = self._available_versions()
        return max(versions) if versions else None

    def oldest_restorable_version(self):
        """Oldest version restore() can rebuild: the oldest snapshot on
        disk (deltas older than every snapshot cannot anchor a restore),
        or the oldest delta when the chain starts from empty state."""
        versions = self._available_versions()
        if not versions:
            return None
        snapshots = [v for v, kinds in versions.items() if "snapshot" in kinds]
        if min(versions) < min(snapshots, default=float("inf")):
            # The chain still starts from empty state: everything works.
            return min(versions)
        return min(snapshots) if snapshots else None

    def prune(self, keep_from_version: int) -> int:
        """Garbage-collect checkpoints no longer needed to restore any
        version >= ``keep_from_version``.

        Keeps the newest snapshot at or below the horizon plus everything
        after it (deltas replay from that snapshot).  Returns the number
        of files deleted.  Without pruning, a long-running query's state
        directory grows forever (§6.1's checkpoints are periodic for
        exactly this reason).
        """
        versions = self._available_versions()
        snapshots = sorted(
            v for v, kinds in versions.items()
            if "snapshot" in kinds and v <= keep_from_version
        )
        if not snapshots:
            return 0
        base = snapshots[-1]
        removed = 0
        for v, kinds in versions.items():
            for kind in kinds:
                if v < base or (v == base and kind == "delta"):
                    path = self._path(v, kind)
                    if os.path.exists(path):
                        os.unlink(path)
                        removed += 1
        return removed

    def restore(self, version):
        """Reset the working state to the newest checkpoint <= ``version``.

        Deltas are relative to the previous *commit* (not the previous
        epoch), so sparse version numbers — from a checkpoint interval
        larger than one epoch — replay correctly.  Returns the version
        actually restored (None for empty state); the engine replays
        input epochs after it from the WAL to reach the target (§6.1
        step 4).
        """
        self._data = {}
        self._dirty.clear()
        self._removed.clear()
        self.last_committed_version = None
        if version is None:
            self._rebuild_expiry_index()
            return None
        versions = self._available_versions()
        usable = sorted(v for v in versions if v <= version)
        if not usable:
            self._rebuild_expiry_index()
            return None
        # Newest snapshot at or below the target is the replay base.
        base = None
        for v in reversed(usable):
            if "snapshot" in versions[v]:
                base = v
                break
        if base is not None:
            self._data = dict(read_json(self._path(base, "snapshot"))["data"])
        for v in usable:
            if base is not None and v <= base:
                continue
            delta = read_json(self._path(v, "delta"))
            self._data.update(delta["puts"])
            for key in delta["removes"]:
                self._data.pop(key, None)
        self.last_committed_version = usable[-1]
        self._rebuild_expiry_index()
        return usable[-1]


class StateStore:
    """All operators' state for one query, under ``<checkpoint>/state``."""

    def __init__(self, checkpoint_dir: str, snapshot_interval: int = 10):
        self._directory = os.path.join(checkpoint_dir, "state")
        self._snapshot_interval = snapshot_interval
        self._handles = {}
        os.makedirs(self._directory, exist_ok=True)

    def handle(self, operator_id: str) -> OperatorStateHandle:
        """Get (or create) the state handle for an operator."""
        if operator_id not in self._handles:
            self._handles[operator_id] = OperatorStateHandle(
                os.path.join(self._directory, operator_id),
                self._snapshot_interval,
            )
        return self._handles[operator_id]

    def commit_all(self, version: int) -> list:
        """Checkpoint every operator at ``version``; returns metrics."""
        return [h.commit(version) for h in self._handles.values()]

    def restore_all(self, version):
        """Restore every operator to one *consistent* version <= ``version``.

        A crash can land mid-``commit_all``, leaving operators with
        different newest checkpoints; replaying from the lagging
        operator's version would double-apply epochs to the others.  So
        the common base is computed first — the oldest "newest checkpoint
        <= version" across operators — and every operator restores to
        exactly that.  Returns the base (None if any operator has no
        usable checkpoint; state is then empty and replay starts from
        epoch 0).
        """
        handles = list(self._handles.values())
        if not handles:
            return version
        newest = []
        for handle in handles:
            versions = [v for v in handle._available_versions() if v <= version]
            newest.append(max(versions) if versions else None)
        if any(v is None for v in newest):
            for handle in handles:
                handle.restore(None)
            return None
        base = min(newest)
        for handle in handles:
            restored = handle.restore(base)
            assert restored == base, (
                f"operator checkpoint missing at consistent base {base}"
            )
        return base

    def prune_all(self, keep_from_version: int) -> int:
        """Prune every operator's old checkpoints; returns files removed."""
        return sum(h.prune(keep_from_version) for h in self._handles.values())

    def oldest_restorable_version(self):
        """Oldest version restorable by *every* operator (None if any
        operator has no checkpoints)."""
        oldest = [h.oldest_restorable_version() for h in self._handles.values()]
        if not oldest or any(v is None for v in oldest):
            return None
        return max(oldest)

    def latest_complete_version(self):
        """Newest version checkpointed by *all* operators, or None."""
        latests = [h.latest_version() for h in self._handles.values()]
        if not latests or any(v is None for v in latests):
            return None
        return min(latests)

    def total_keys(self) -> int:
        """Total keys across operators (a monitoring metric, §2.3)."""
        return sum(len(h) for h in self._handles.values())
