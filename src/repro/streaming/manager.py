"""StreamingQueryManager: session-level registry of active queries.

The paper emphasizes that users "can manage multiple streaming queries
dynamically and run interactive queries on consistent snapshots of
stream output" (§1).  The manager tracks every query started through a
session, mirroring Spark's ``spark.streams``: list active queries, look
them up by name, await or stop them all.
"""

from __future__ import annotations

import threading
import time


class StreamingQueryManager:
    """Registry of streaming queries started from one session."""

    def __init__(self):
        self._queries = []
        self._lock = threading.Lock()

    def register(self, query) -> None:
        """Track a newly started query."""
        with self._lock:
            self._queries.append(query)

    @property
    def active(self) -> list:
        """Queries that can still make progress (not stopped/terminated)."""
        with self._lock:
            return [q for q in self._queries if q.is_active]

    @property
    def all_queries(self) -> list:
        """Every query ever started through this session."""
        with self._lock:
            return list(self._queries)

    def get(self, name: str):
        """Look up a query by its name (raises KeyError if absent)."""
        with self._lock:
            for query in self._queries:
                if query.name == name:
                    return query
        raise KeyError(f"no streaming query named {name!r}")

    def await_any_termination(self, timeout: float = None) -> bool:
        """Block until any threaded query terminates (True) or timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                threaded = [q for q in self._queries if q._thread is not None]
            if any(not q.is_active for q in threaded):
                for q in threaded:
                    if q.exception is not None:
                        raise q.exception
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def stop_all(self) -> None:
        """Stop every tracked query."""
        for query in self.all_queries:
            query.stop()
