"""StreamingQueryManager: session-level registry of active queries.

The paper emphasizes that users "can manage multiple streaming queries
dynamically and run interactive queries on consistent snapshots of
stream output" (§1).  The manager tracks every query started through a
session, mirroring Spark's ``spark.streams``: list active queries, look
them up by name, await or stop them all.

Manager-level listeners mirror Spark's ``StreamingQueryListener``
lifecycle: ``on_query_started(query)`` fires when a query is registered,
``on_query_progress(progress)`` after every epoch of every tracked
query, and ``on_query_terminated(query, exception)`` when a query stops
(``exception`` is None for a clean stop).  Listener exceptions are
counted (``query.listener_errors``), never propagated.
"""

from __future__ import annotations

import threading
import time

from repro.observability import metrics


class StreamingQueryManager:
    """Registry of streaming queries started from one session."""

    def __init__(self):
        self._queries = []
        self._listeners = []
        self._lock = threading.Lock()
        #: Exceptions swallowed while notifying manager-level listeners.
        self.listener_errors = 0

    def register(self, query) -> None:
        """Track a newly started query and fire ``on_query_started``."""
        with self._lock:
            self._queries.append(query)
        query._manager = self
        query.engine.progress.listeners.append(self._on_progress)
        self._dispatch("on_query_started", query)

    # ------------------------------------------------------------------
    # Lifecycle listeners (§7.4, Spark's StreamingQueryListener)
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Attach a lifecycle listener (double-registration is a no-op)."""
        with self._lock:
            if any(existing is listener for existing in self._listeners):
                return
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Detach a lifecycle listener."""
        with self._lock:
            self._listeners = [
                l for l in self._listeners if l is not listener
            ]

    def _dispatch(self, event: str, *args) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            callback = getattr(listener, event, None)
            if callback is None:
                continue
            try:
                callback(*args)
            except Exception:
                self.listener_errors += 1
                metrics.count("query.listener_errors")

    def _on_progress(self, progress) -> None:
        self._dispatch("on_query_progress", progress)

    def _notify_terminated(self, query) -> None:
        self._dispatch("on_query_terminated", query, query.exception)

    def metrics_snapshot(self) -> dict:
        """Process metrics snapshot plus a per-query status summary."""
        return {
            "queries": [
                {
                    "name": query.name,
                    "active": query.is_active,
                    "next_epoch": getattr(query.engine, "next_epoch", None),
                    "listener_errors": (query.listener_errors
                                        + query.engine.progress.listener_errors),
                }
                for query in self.all_queries
            ],
            "metrics": metrics.snapshot(),
        }

    @property
    def active(self) -> list:
        """Queries that can still make progress (not stopped/terminated)."""
        with self._lock:
            return [q for q in self._queries if q.is_active]

    @property
    def all_queries(self) -> list:
        """Every query ever started through this session."""
        with self._lock:
            return list(self._queries)

    def get(self, name: str):
        """Look up a query by its name (raises KeyError if absent)."""
        with self._lock:
            for query in self._queries:
                if query.name == name:
                    return query
        raise KeyError(f"no streaming query named {name!r}")

    def await_any_termination(self, timeout: float = None) -> bool:
        """Block until any threaded query terminates (True) or timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                threaded = [q for q in self._queries if q._thread is not None]
            if any(not q.is_active for q in threaded):
                for q in threaded:
                    if q.exception is not None:
                        raise q.exception
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def stop_all(self) -> None:
        """Stop every tracked query."""
        for query in self.all_queries:
            query.stop()
