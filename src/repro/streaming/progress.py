"""Progress and monitoring events (§7.4, §2.3's monitoring challenge).

Each completed epoch produces an :class:`EpochProgress` carrying the
metrics the paper lists operators needing: load (rows, rows/s), backlog,
state size, watermarks and timing.  ``to_json`` keeps it loggable as a
structured event.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EpochProgress:
    """Metrics for one completed epoch."""

    epoch_id: int
    trigger_time: float
    duration_seconds: float
    input_rows: int
    output_rows: int
    backlog_rows: int
    state_keys: int
    late_rows_dropped: int
    watermarks: dict = field(default_factory=dict)
    sources: dict = field(default_factory=dict)
    #: Per-task summary of the epoch's last scheduler stage (wall times,
    #: attempts, speculation) when a TaskScheduler drives the epoch.
    task_metrics: dict = None

    @property
    def input_rows_per_second(self) -> float:
        """Processing rate for this epoch."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.input_rows / self.duration_seconds

    def to_json(self) -> dict:
        """Structured-event form (for logs and dashboards)."""
        return {
            "epoch": self.epoch_id,
            "triggerTime": self.trigger_time,
            "durationSeconds": self.duration_seconds,
            "numInputRows": self.input_rows,
            "numOutputRows": self.output_rows,
            "backlogRows": self.backlog_rows,
            "stateKeys": self.state_keys,
            "lateRowsDropped": self.late_rows_dropped,
            "inputRowsPerSecond": self.input_rows_per_second,
            "watermarks": self.watermarks,
            "sources": self.sources,
            "taskMetrics": self.task_metrics,
        }


class ProgressReporter:
    """Keeps a bounded history of epoch progress for a query."""

    def __init__(self, capacity: int = 100):
        self._capacity = capacity
        self._history = []
        self.listeners = []

    def record(self, progress: EpochProgress) -> None:
        """Append progress; notify listeners."""
        self._history.append(progress)
        if len(self._history) > self._capacity:
            del self._history[: len(self._history) - self._capacity]
        for listener in self.listeners:
            listener(progress)

    @property
    def last(self):
        """Most recent epoch progress, or None."""
        return self._history[-1] if self._history else None

    @property
    def recent(self) -> list:
        """Retained progress history, oldest first."""
        return list(self._history)
