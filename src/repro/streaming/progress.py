"""Progress and monitoring events (§7.4, §2.3's monitoring challenge).

Each completed epoch produces an :class:`EpochProgress` carrying the
metrics the paper lists operators needing: load (rows, rows/s), backlog,
state size, watermarks and timing — plus, when the observability layer
is enabled, per-stage timings, per-operator row counts, scheduler task
metrics and continuous-mode latency percentiles.  ``to_json`` keeps it
loggable as a structured event; empty sections are omitted so
``events.jsonl`` lines stay compact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability import metrics


@dataclass
class EpochProgress:
    """Metrics for one completed epoch."""

    epoch_id: int
    trigger_time: float
    duration_seconds: float
    input_rows: int
    output_rows: int
    backlog_rows: int
    state_keys: int
    late_rows_dropped: int
    watermarks: dict = field(default_factory=dict)
    sources: dict = field(default_factory=dict)
    #: Per-task summary of the epoch's last scheduler stage (wall times,
    #: attempts, speculation) when a TaskScheduler drives the epoch.
    task_metrics: dict = field(default_factory=dict)
    #: Engine phase -> seconds for this epoch (wal-offsets, read-inputs,
    #: process, sink-write, wal-commit, state-commit); populated when
    #: observability is active.
    stage_timings: dict = field(default_factory=dict)
    #: Operator label -> {"rows_out", "seconds", "calls"} for this
    #: epoch's plan execution; populated when observability is active.
    operator_metrics: dict = field(default_factory=dict)
    #: Continuous-mode record latency summary (count/mean/p50/p95/p99),
    #: cumulative over the query's lifetime.
    latency_percentiles: dict = field(default_factory=dict)
    #: Net output rows (sum of ``__weight__``) for retract-mode epochs:
    #: the true table growth, distinct from the delivered delta-row
    #: count above.  None for unweighted output.
    output_rows_net: int = None
    #: End-to-end event-time lag for this epoch: now minus the oldest
    #: source-ingest timestamp consumed — propagated through stream
    #: table cascades, so a gold-stage epoch reports lag since *bronze*
    #: ingest.  None when untracked or observability is off.
    event_time_lag_seconds: float = None
    #: Dominant cost of this epoch ({"name", "share", "seconds"}, see
    #: :mod:`repro.observability.bottleneck`); populated when
    #: observability is active.
    bottleneck: dict = field(default_factory=dict)

    @property
    def input_rows_per_second(self) -> float:
        """Processing rate for this epoch."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.input_rows / self.duration_seconds

    def to_json(self) -> dict:
        """Structured-event form (for logs and dashboards).

        Optional sections (watermarks, sources, task/stage/operator
        metrics, latency percentiles) are omitted when empty so the
        per-epoch event lines stay compact.
        """
        payload = {
            "epoch": self.epoch_id,
            "triggerTime": self.trigger_time,
            "durationSeconds": self.duration_seconds,
            "numInputRows": self.input_rows,
            "numOutputRows": self.output_rows,
            "backlogRows": self.backlog_rows,
            "stateKeys": self.state_keys,
            "lateRowsDropped": self.late_rows_dropped,
            "inputRowsPerSecond": self.input_rows_per_second,
        }
        if self.output_rows_net is not None:
            payload["numOutputRowsNet"] = self.output_rows_net
        if self.event_time_lag_seconds is not None:
            payload["eventTimeLagSeconds"] = self.event_time_lag_seconds
        optional = {
            "watermarks": self.watermarks,
            "sources": self.sources,
            "taskMetrics": self.task_metrics,
            "stageTimings": self.stage_timings,
            "operatorMetrics": self.operator_metrics,
            "latencyPercentiles": self.latency_percentiles,
            "bottleneck": self.bottleneck,
        }
        for key, section in optional.items():
            if section:
                payload[key] = section
        return payload


class ProgressReporter:
    """Keeps a bounded history of epoch progress for a query.

    Listener callbacks are isolated: a raising listener is counted
    (``listener_errors`` here and the ``query.listener_errors`` metric)
    and skipped, never allowed to kill the driver loop — the same
    containment ``on_terminated`` failures already had in ``query.py``.
    """

    def __init__(self, capacity: int = 100):
        self._capacity = capacity
        self._history = []
        self.listeners = []
        #: Count of listener callbacks that raised (and were swallowed).
        self.listener_errors = 0

    def record(self, progress: EpochProgress) -> None:
        """Append progress; notify listeners (their failures contained)."""
        self._history.append(progress)
        if len(self._history) > self._capacity:
            del self._history[: len(self._history) - self._capacity]
        for listener in list(self.listeners):
            try:
                listener(progress)
            except Exception:
                self.listener_errors += 1
                metrics.count("query.listener_errors")

    @property
    def last(self):
        """Most recent epoch progress, or None."""
        return self._history[-1] if self._history else None

    @property
    def recent(self) -> list:
        """Retained progress history, oldest first."""
        return list(self._history)
