"""Event-time watermark tracking (§4.3.1).

For a watermarked column C with delay t, the watermark is
``max(C) - t`` over all data seen so far; it only moves forward.  As the
paper notes, this is naturally robust to backlog: if the engine falls
behind, max(C) stops advancing and no state is dropped prematurely.

Following Spark's semantics, the watermark used while processing epoch N
is computed from data seen in epochs < N; the tracker therefore exposes
``current()`` (frozen at epoch start) separate from ``observe`` /
``advance``.  The tracker state is persisted in each epoch's WAL offsets
entry so recovery resumes with the same watermark.
"""

from __future__ import annotations


class WatermarkTracker:
    """Tracks per-column maxima and derived watermarks."""

    def __init__(self, delays: dict):
        # delays: column name -> lateness threshold in seconds.
        self._delays = dict(delays)
        self._max_seen = {}
        self._watermarks = {}

    @property
    def columns(self) -> list:
        """Watermarked column names."""
        return sorted(self._delays)

    def current(self, column: str):
        """The watermark for a column (None until any data was seen)."""
        return self._watermarks.get(column)

    def global_minimum(self):
        """The minimum watermark across all columns (None if any unset).

        Used by operators keyed on multiple event-time inputs (e.g.
        stream-stream joins): state is only safe to drop below the
        slowest stream's watermark.
        """
        if not self._delays:
            return None
        values = [self._watermarks.get(c) for c in self._delays]
        if any(v is None for v in values):
            return None
        return min(values)

    def observe(self, column: str, max_event_time: float) -> None:
        """Record the max event time seen for a column in this epoch."""
        if column not in self._delays:
            return
        previous = self._max_seen.get(column)
        if previous is None or max_event_time > previous:
            self._max_seen[column] = max_event_time

    def advance(self) -> None:
        """Move watermarks forward from the observed maxima (monotonic).

        Called once at the end of each epoch; the new values take effect
        for the *next* epoch.
        """
        for column, max_seen in self._max_seen.items():
            candidate = max_seen - self._delays[column]
            previous = self._watermarks.get(column)
            if previous is None or candidate > previous:
                self._watermarks[column] = candidate

    # ------------------------------------------------------------------
    # WAL (de)serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """State for the WAL offsets entry."""
        return {
            "max_seen": dict(self._max_seen),
            "watermarks": dict(self._watermarks),
        }

    def load_json(self, payload: dict) -> None:
        """Restore from a WAL offsets entry."""
        self._max_seen = dict(payload.get("max_seen", {}))
        self._watermarks = dict(payload.get("watermarks", {}))
