"""Tiered (larger-than-memory) state backend: LSM runs under the shard API.

``TieredOperatorStateHandle`` keeps the shard dicts of
:class:`~repro.streaming.state.OperatorStateHandle` as a **memtable**
capped by a byte budget; when the budget is exceeded the memtable is
sealed into an immutable **sorted run** on disk
(``<operator>/runs/<seq>.run``, JSON-lines sorted by encoded key, one
sidecar ``.meta`` file).  Point lookups probe the memtable, then each
run newest-first — a per-run **bloom filter**, **key-range fences** and
a **sparse block index** mean a probe touches at most one ~:data:`INDEX_EVERY`-line
block per run, so join/dedup lookups stay O(delta), never O(state).

Checkpoints become delta-based: ``commit(version)`` seals the memtable
as one more run and writes a **manifest** (``<version>.manifest.json``)
listing the live run files with their SHA-256 content hashes.  The
manifest reuses the atomic-write/torn-tail machinery of
:mod:`repro.storage`, parses under the same ``<version>.<kind>.json``
naming as dict-backend checkpoints, and — because it embeds every run's
hash — keeps ``checkpoint_fingerprint`` honest even though run files
live outside the fingerprinted ``*.json`` set.  Snapshot cost is
O(epoch delta): unchanged runs are listed, not rewritten.

**Compaction** is size-tiered and runs *inline at commit time* (never a
background thread: crash-replay must reproduce byte-identical run files,
and thread timing would make flush/merge boundaries nondeterministic).
Adjacent runs in the same size tier merge newest-wins once
:data:`COMPACT_FANIN` of them accumulate; tombstones are dropped only
when a merge includes the oldest run (nothing older can resurrect the
key — removals themselves are already watermark-gated by the operators'
eviction logic, so tombstone GC is bounded by the watermark horizon).

Crash-consistency invariants:

* run files are written atomically and *referenced counted by
  manifests*: a run is deleted only when no manifest on disk lists it
  (plus never while this handle holds it open), so rollback to any
  retained manifest always finds its runs;
* run sequence numbers restart from the restored manifest's
  ``next_seq``, and flush boundaries are a pure function of the put
  sequence — replay after a crash regenerates byte-identical runs and
  manifests (the exactly-once sweep checks this at the fingerprint
  level);
* orphaned runs (flushed after the last durable manifest, or torn by a
  crash) are garbage-collected when the handle is next *constructed* —
  never during ``restore``, which also runs inside forked process-pool
  workers that must not delete the driver's files.

Process-executor replicas work unchanged: workers fork with the driver's
open run file descriptors (reads use ``os.pread``, so a file stays
readable after the driver unlinks it), and the sync-delta journal ships
current values — probed from runs when a journaled key was flushed.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from array import array
from bisect import bisect_right

import numpy as np

from repro.observability import metrics
from repro.storage import (
    atomic_write_json,
    atomic_write_stream,
    list_files,
    read_json,
)
from repro.streaming.state import (
    OperatorStateHandle,
    _cache_key,
    _make_shards,
    decode_key,
    encode_key,
)
from repro.testing.faults import fault_point

#: Default memtable budget (bytes) when neither the option nor
#: REPRO_STATE_MEMTABLE_BYTES is set.
DEFAULT_MEMTABLE_BYTES = 64 * 1024 * 1024
#: Sparse-index granularity: one (key, offset) entry per this many run
#: lines; a probe reads at most one such block per run.
INDEX_EVERY = 64
#: Bloom filter sizing/shape (~0.15% false-positive rate at 14 bits).
BLOOM_BITS_PER_KEY = 14
BLOOM_K = 7
#: Size-tiered compaction: merge once this many adjacent same-tier runs
#: accumulate.
COMPACT_FANIN = 4
#: Hard cap on live runs: above this, the smallest adjacent pair merges
#: even across tiers.  Every point probe pays one bloom check per run,
#: so an unbounded run set would put an O(log total-state) term back
#: into the per-put cost the memtable/bloom design exists to avoid.
MAX_RUNS = 10
#: Streaming-scan read size (bounds merge/iteration memory).
SCAN_CHUNK = 1 << 20
#: Bound on the interned-key cache: the dict backend scales its cache
#: with ``len(self)``, which would itself be O(total keys) here.
KEY_CACHE_MAX = 65536

_MASK64 = (1 << 64) - 1


class _Tombstone:
    """Sentinel marking a removed key in the memtable and in runs."""

    __slots__ = ()

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()

_MISS = object()


def _bloom_hash(encoded: str) -> tuple:
    """Two independent 64-bit hashes for double hashing.

    blake2b (not ``hash()``) because bloom bits are persisted: Python's
    string hash is salted per process and would desync across restarts.
    """
    digest = hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).digest()
    return (int.from_bytes(digest[:8], "little"),
            int.from_bytes(digest[8:], "little") | 1)


def _bloom_bits(count: int) -> int:
    """Filter size in bits: a deterministic function of the run size."""
    bits = max(64, count * BLOOM_BITS_PER_KEY)
    return ((bits + 7) // 8) * 8


def _approx_value_bytes(value) -> int:
    """Rough in-memory size of a JSON value, for the memtable budget.

    Deterministic (flush boundaries must replay identically), cheap, and
    intentionally on the high side — the budget is a cap, not a meter.
    """
    if isinstance(value, str):
        return 56 + len(value)
    if value is None or isinstance(value, (bool, int, float)):
        return 32
    if isinstance(value, (list, tuple)):
        return 64 + sum(_approx_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return 64 + sum(
            _approx_value_bytes(k) + _approx_value_bytes(v)
            for k, v in value.items()
        )
    return 64


def _entry_bytes(encoded: str, value) -> int:
    return 88 + len(encoded) + _approx_value_bytes(value)


def _tier(count: int) -> int:
    """Size tier of a run: log2 of its entry count, with every run
    below :data:`COMPACT_FANIN` entries in tier 0 — tiny runs (trickle
    epochs) must still bucket together or they would never compact."""
    return max(0, max(0, count).bit_length() - 2)


class SortedRun:
    """One immutable sorted run on disk, with its probe structures.

    File format: one JSON array per line, sorted by encoded key —
    ``[encoded_key, value]`` for a live entry, ``[encoded_key]`` for a
    tombstone.  The sidecar ``.meta`` JSON carries the bloom filter,
    fences, sparse index and the run's SHA-256 (the hash manifests pin).

    Reads go through ``os.pread`` on a descriptor held open for the
    run's lifetime: thread-safe without seek state, and — because forked
    workers inherit the descriptor — still readable after the driver
    compacts and unlinks the file (POSIX deleted-but-open semantics).
    """

    __slots__ = ("seq", "path", "count", "bytes", "sha256", "min_key",
                 "max_key", "_fd", "_bloom", "_bloom_m", "_index_keys",
                 "_index_offsets")

    def __init__(self, seq, path, meta):
        self.seq = seq
        self.path = path
        self.count = meta["count"]
        self.bytes = meta["bytes"]
        self.sha256 = meta["sha256"]
        self.min_key = meta["min_key"]
        self.max_key = meta["max_key"]
        self._bloom = bytes.fromhex(meta["bloom"])
        self._bloom_m = meta["bloom_m"]
        self._index_keys = meta["index_keys"]
        self._index_offsets = meta["index_offsets"]
        self._fd = os.open(path, os.O_RDONLY)

    @staticmethod
    def run_path(directory: str, seq: int) -> str:
        return os.path.join(directory, f"{seq:08d}.run")

    @staticmethod
    def meta_path(directory: str, seq: int) -> str:
        return os.path.join(directory, f"{seq:08d}.meta")

    @classmethod
    def create(cls, directory: str, seq: int, items,
               count_hint: int = None) -> "SortedRun":
        """Write a run from ``(encoded_key, value)`` pairs in key order.

        ``items`` may be a one-shot iterator (compaction merges stream);
        content streams to disk and bloom bits are applied in bounded
        chunks, so memory stays O(chunk), never O(run).  ``count_hint``
        sizes the bloom filter when the final count is unknown upfront
        (a compaction merge dedupes as it streams); it must be an upper
        bound and deterministic, since the filter bytes are persisted.
        """
        path = cls.run_path(directory, seq)
        bloom_m = _bloom_bits(count_hint) if count_hint is not None else None
        state = {"count": 0, "offset": 0, "min": None, "max": None,
                 "bits": (np.zeros(bloom_m // 8, dtype=np.uint8)
                          if bloom_m is not None else None)}
        index_keys, index_offsets = [], []
        hashes_lo, hashes_hi = array("Q"), array("Q")
        sha = hashlib.sha256()

        def apply_hashes(m):
            if not hashes_lo:
                return
            # np.array copies; frombuffer would pin the arrays' buffers
            # and break the clear below.
            h_lo = np.array(hashes_lo, dtype=np.uint64)
            h_hi = np.array(hashes_hi, dtype=np.uint64)
            for i in range(BLOOM_K):
                idx = (h_lo + np.uint64(i) * h_hi) % np.uint64(m)
                np.bitwise_or.at(
                    state["bits"], (idx >> np.uint64(3)).astype(np.int64),
                    np.left_shift(
                        np.uint8(1), (idx & np.uint64(7)).astype(np.uint8)),
                )
            del hashes_lo[:], hashes_hi[:]

        def chunks():
            for encoded, value in items:
                if state["count"] % INDEX_EVERY == 0:
                    index_keys.append(encoded)
                    index_offsets.append(state["offset"])
                lo, hi = _bloom_hash(encoded)
                hashes_lo.append(lo)
                hashes_hi.append(hi)
                if bloom_m is not None and len(hashes_lo) >= 65536:
                    apply_hashes(bloom_m)
                if value is TOMBSTONE:
                    line = json.dumps([encoded]) + "\n"
                else:
                    line = json.dumps([encoded, value], sort_keys=True) + "\n"
                data = line.encode("utf-8")
                sha.update(data)
                state["offset"] += len(data)
                state["count"] += 1
                if state["min"] is None:
                    state["min"] = encoded
                state["max"] = encoded
                yield line

        atomic_write_stream(path, chunks())
        count = state["count"]
        final_m = bloom_m if bloom_m is not None else _bloom_bits(count)
        if state["bits"] is None:
            state["bits"] = np.zeros(final_m // 8, dtype=np.uint8)
        apply_hashes(final_m)
        bits = state["bits"]
        meta = {
            "count": count,
            "bytes": state["offset"],
            "sha256": sha.hexdigest(),
            "min_key": state["min"],
            "max_key": state["max"],
            "bloom": bytes(bits).hex(),
            "bloom_m": final_m,
            "index_every": INDEX_EVERY,
            "index_keys": index_keys,
            "index_offsets": index_offsets,
        }
        atomic_write_json(cls.meta_path(directory, seq), meta)
        return cls(seq, path, meta)

    @classmethod
    def open(cls, directory: str, seq: int) -> "SortedRun":
        meta = read_json(cls.meta_path(directory, seq))
        return cls(seq, cls.run_path(directory, seq), meta)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def _bloom_contains(self, h_lo: int, h_hi: int) -> bool:
        bits = self._bloom
        m = self._bloom_m
        for i in range(BLOOM_K):
            idx = ((h_lo + i * h_hi) & _MASK64) % m
            if not (bits[idx >> 3] >> (idx & 7)) & 1:
                return False
        return True

    def get(self, encoded: str, h_lo: int, h_hi: int):
        """Probe one key: ``_MISS``, ``TOMBSTONE``, or the value.

        Fences, then bloom, then a single sparse-index block read —
        never a scan of the run.
        """
        if self.count == 0 or not self.min_key <= encoded <= self.max_key:
            return _MISS
        if not self._bloom_contains(h_lo, h_hi):
            return _MISS
        pos = bisect_right(self._index_keys, encoded) - 1
        if pos < 0:
            return _MISS
        start = self._index_offsets[pos]
        end = (self._index_offsets[pos + 1]
               if pos + 1 < len(self._index_offsets) else self.bytes)
        block = os.pread(self._fd, end - start, start)
        # ``json.dumps([key])[:-1]`` ends at the key's closing quote, so
        # a prefix match is an exact key match (longer keys diverge at
        # that quote); the byte after decides entry vs tombstone.
        prefix = json.dumps([encoded])[:-1].encode("utf-8")
        plen = len(prefix)
        for line in block.split(b"\n"):
            if not line.startswith(prefix):
                continue
            tail = line[plen:plen + 1]
            if tail == b"]":
                return TOMBSTONE
            if tail == b",":
                return json.loads(line)[1]
        return _MISS

    def scan(self):
        """Stream ``(encoded_key, value_or_TOMBSTONE)`` in key order."""
        offset = 0
        leftover = b""
        while True:
            chunk = os.pread(self._fd, SCAN_CHUNK, offset)
            if not chunk:
                break
            offset += len(chunk)
            lines = (leftover + chunk).split(b"\n")
            leftover = lines.pop()
            for line in lines:
                if not line:
                    continue
                doc = json.loads(line)
                yield doc[0], (doc[1] if len(doc) > 1 else TOMBSTONE)


class TieredOperatorStateHandle(OperatorStateHandle):
    """Drop-in :class:`OperatorStateHandle` with LSM-tiered storage.

    The shard dicts become a bounded memtable (values or ``TOMBSTONE``);
    reads fall through to the sorted runs newest-first.  All public
    semantics — ``get``/``put``/``remove``/``pop_expired``/``items``,
    delta commits, restore to any retained version, N→M shard rescaling,
    the process executor's sync-delta journal — match the dict backend
    (the property suite in ``tests/test_state_tiered.py`` pins this).
    """

    backend = "tiered"
    _RESTORE_KINDS = frozenset({"snapshot", "delta", "manifest"})

    def __init__(self, directory: str, snapshot_interval: int = 10,
                 num_shards: int = 1, memtable_bytes: int = None):
        super().__init__(directory, snapshot_interval, num_shards)
        if memtable_bytes is None:
            memtable_bytes = int(
                os.environ.get("REPRO_STATE_MEMTABLE_BYTES")
                or DEFAULT_MEMTABLE_BYTES)
        self.memtable_bytes = max(1, int(memtable_bytes))
        self._runs_dir = os.path.join(directory, "runs")
        os.makedirs(self._runs_dir, exist_ok=True)
        self._runs = []          # newest first
        self._next_seq = 0
        self._mem_bytes = 0
        self._live_count = 0
        # Construction happens on a fresh engine (never inside a forked
        # worker), so this is the safe moment to drop runs no durable
        # manifest references: wild runs flushed after the last commit,
        # or torn by a crash mid-flush.  ``repair_torn_tail`` (in the
        # base constructor) has already quarantined a torn manifest.
        self._gc_runs()

    # ------------------------------------------------------------------
    # Keyed access
    # ------------------------------------------------------------------
    def _locate(self, key):
        # Same interning cache as the base class, but with a fixed bound:
        # the dict backend's ``4 * len(self)`` bound is itself O(total
        # keys), which is exactly what this backend must not hold in RAM.
        cache_key = _cache_key(key)
        located = self._key_cache.get(cache_key)
        if located is None:
            if len(self._key_cache) >= KEY_CACHE_MAX:
                self._key_cache.clear()
            located = (self._shards[self.shard_index(key)], encode_key(key))
            self._key_cache[cache_key] = located
        return located

    def _probe_runs(self, encoded: str):
        """Look a key up in the runs, newest first."""
        if not self._runs:
            return _MISS
        h_lo, h_hi = _bloom_hash(encoded)
        for run in self._runs:
            value = run.get(encoded, h_lo, h_hi)
            if value is not _MISS:
                return value
        return _MISS

    def _lookup(self, shard, encoded):
        """Current value through both tiers (``_MISS``/``TOMBSTONE`` raw)."""
        value = shard.data.get(encoded, _MISS)
        if value is _MISS:
            value = self._probe_runs(encoded)
        return value

    def get(self, key, default=None):
        shard, encoded = self._locate(key)
        if metrics._registry is not None:
            metrics._registry.counter(shard.gets_metric).inc()
        value = self._lookup(shard, encoded)
        if value is _MISS or value is TOMBSTONE:
            return default
        return value

    def contains(self, key) -> bool:
        shard, encoded = self._locate(key)
        value = self._lookup(shard, encoded)
        return value is not _MISS and value is not TOMBSTONE

    def put(self, key, value) -> None:
        shard, encoded = self._locate(key)
        if metrics._registry is not None:
            metrics._registry.counter(shard.puts_metric).inc()
        old = shard.data.get(encoded, _MISS)
        if old is _MISS:
            prior = self._probe_runs(encoded)
            was_live = prior is not _MISS and prior is not TOMBSTONE
            self._mem_bytes += _entry_bytes(encoded, value)
        else:
            was_live = old is not TOMBSTONE
            self._mem_bytes += (
                _approx_value_bytes(value) - _approx_value_bytes(old))
        shard.data[encoded] = value
        if not was_live:
            self._live_count += 1
        shard.dirty.add(encoded)
        shard.removed.discard(encoded)
        if shard.pending is not None:
            shard.pending.add(encoded)
        if self._expiry_fn is not None:
            self._index_put(shard, encoded, key, value)
        if self._mem_bytes >= self.memtable_bytes:
            self._flush()

    def remove(self, key) -> None:
        shard, encoded = self._locate(key)
        old = shard.data.get(encoded, _MISS)
        if old is _MISS:
            prior = self._probe_runs(encoded)
            if prior is _MISS or prior is TOMBSTONE:
                return
            self._mem_bytes += _entry_bytes(encoded, TOMBSTONE)
        else:
            if old is TOMBSTONE:
                return
            self._mem_bytes += (
                _approx_value_bytes(TOMBSTONE) - _approx_value_bytes(old))
        # A tombstone (not a dict pop): it must mask any older value
        # still sitting in a run, and flush with the next seal.
        shard.data[encoded] = TOMBSTONE
        self._live_count -= 1
        shard.dirty.discard(encoded)
        shard.removed.add(encoded)
        if shard.pending is not None:
            shard.pending.add(encoded)
        shard.expiry.pop(encoded, None)
        metrics.count("state.removes")
        if self._mem_bytes >= self.memtable_bytes:
            self._flush()

    def pop_expired(self, bound) -> list:
        popped = []
        for shard in self._shards:
            heap = shard.heap
            shard_popped = 0
            while heap and heap[0][0] <= bound:
                expiry, encoded = heapq.heappop(heap)
                if shard.expiry.get(encoded) != expiry:
                    continue
                del shard.expiry[encoded]
                value = self._lookup(shard, encoded)
                if value is _MISS or value is TOMBSTONE:
                    continue  # indexed entry superseded by a removal
                popped.append((expiry, encoded, value))
                shard_popped += 1
            if shard_popped:
                metrics.count(shard.evictions_metric, shard_popped)
        popped.sort(key=lambda item: item[:2])
        return [(decode_key(encoded), value) for _, encoded, value in popped]

    def _iter_merged(self):
        """Stream live ``(encoded, value)`` pairs, key-sorted, newest-wins."""
        mem = {}
        for shard in self._shards:
            mem.update(shard.data)
        streams = [iter(sorted(mem.items()))]
        streams.extend(run.scan() for run in self._runs)

        def tag(stream, priority):
            for encoded, value in stream:
                yield encoded, priority, value

        last = None
        for encoded, _priority, value in heapq.merge(
                *(tag(s, i) for i, s in enumerate(streams))):
            if encoded == last:
                continue  # an older tier's value, superseded
            last = encoded
            if value is TOMBSTONE:
                continue
            yield encoded, value

    def items(self):
        """Iterate (decoded_key, value); key-sorted (unlike the dict
        backend's insertion order — callers already must not rely on raw
        order, see the base class docstring)."""
        for encoded, value in self._iter_merged():
            yield decode_key(encoded), value

    def keys(self):
        for encoded, _value in self._iter_merged():
            yield decode_key(encoded)

    def __len__(self) -> int:
        return self._live_count

    def _rebuild_expiry_index(self) -> None:
        for shard in self._shards:
            shard.expiry = {}
            shard.heap = []
        if self._expiry_fn is None:
            return
        for encoded, value in self._iter_merged():
            key = decode_key(encoded)
            expiry = self._expiry_fn(key, value)
            if expiry is not None:
                shard = self._shards[self.shard_index(key)]
                shard.expiry[encoded] = expiry
                shard.heap.append((expiry, encoded))
        for shard in self._shards:
            heapq.heapify(shard.heap)

    # ------------------------------------------------------------------
    # State-sync journal (process executor)
    # ------------------------------------------------------------------
    def collect_sync_delta(self) -> dict:
        deltas = {}
        for index, shard in enumerate(self._shards):
            if not shard.pending:
                continue
            puts = {}
            removes = []
            for encoded in shard.pending:
                # A journaled key may have been flushed out of the
                # memtable since it was written: ship its run value.
                value = self._lookup(shard, encoded)
                if value is _MISS or value is TOMBSTONE:
                    removes.append(encoded)
                else:
                    puts[encoded] = value
            deltas[index] = (puts, sorted(removes))
            shard.pending = set()
        return deltas

    def sync_residual(self) -> dict:
        deltas = {}
        for index, shard in enumerate(self._shards):
            if not shard.dirty and not shard.removed:
                continue
            puts = {}
            for encoded in shard.dirty:
                value = self._lookup(shard, encoded)
                if value is not _MISS and value is not TOMBSTONE:
                    puts[encoded] = value
            deltas[index] = (puts, sorted(shard.removed))
        return deltas

    def apply_sync_delta(self, shard_index: int, puts: dict, removes) -> None:
        # Worker replicas only: removes become tombstones (a plain pop
        # would unmask a stale value in a fork-inherited run), and the
        # budget is not enforced — replicas never flush or commit.
        shard = self._shards[shard_index]
        for encoded, value in puts.items():
            shard.data[encoded] = value
        for encoded in removes:
            shard.data[encoded] = TOMBSTONE

    # ------------------------------------------------------------------
    # Flush + compaction
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Seal the memtable (all shards, merged + sorted) as one run.

        Dirty/removed/pending journals are untouched: they track the
        *commit* and *worker-sync* deltas, which are independent of
        where a value physically lives.
        """
        items = []
        for shard in self._shards:
            items.extend(shard.data.items())
        if not items:
            return
        items.sort()
        fault_point("state.flush_crash",
                    operator=os.path.basename(self._directory),
                    seq=self._next_seq, entries=len(items))
        run = SortedRun.create(self._runs_dir, self._next_seq, items)
        self._next_seq += 1
        self._runs.insert(0, run)
        for shard in self._shards:
            shard.data.clear()
        self._mem_bytes = 0
        metrics.count("state.flushes")
        self._maybe_compact()

    def _compaction_pick(self):
        """Oldest adjacent group of >= COMPACT_FANIN same-tier runs, as
        ``(start, length)`` into ``self._runs`` — or None.

        Only *adjacent* runs may merge (recency order is what resolves
        key conflicts), and the choice is a pure function of the run
        list, so crash-replay repeats the same merges.  When the run set
        exceeds :data:`MAX_RUNS` despite no tier being full, the
        cheapest adjacent pair merges across tiers — probes pay one
        bloom check per run, so the run count must stay O(1).
        """
        runs = self._runs
        i = len(runs) - 1
        while i >= 0:
            tier = _tier(runs[i].count)
            j = i
            while j - 1 >= 0 and _tier(runs[j - 1].count) == tier:
                j -= 1
            if i - j + 1 >= COMPACT_FANIN:
                return j, i - j + 1
            i = j - 1
        if len(runs) > MAX_RUNS:
            best = min(range(len(runs) - 1),
                       key=lambda k: (runs[k].count + runs[k + 1].count, k))
            return best, 2
        return None

    def _maybe_compact(self) -> None:
        while True:
            pick = self._compaction_pick()
            if pick is None:
                return
            start, length = pick
            group = self._runs[start:start + length]
            # Tombstones can only be dropped when nothing older could
            # still hold the key, i.e. the merge reaches the oldest run.
            drop_tombstones = start + length == len(self._runs)
            fault_point("state.compaction_crash",
                        operator=os.path.basename(self._directory),
                        seqs=[r.seq for r in group],
                        drop_tombstones=drop_tombstones)

            def merged():
                def tag(run, priority):
                    for encoded, value in run.scan():
                        yield encoded, priority, value

                last = None
                for encoded, _p, value in heapq.merge(
                        *(tag(r, p) for p, r in enumerate(group))):
                    if encoded == last:
                        continue
                    last = encoded
                    if drop_tombstones and value is TOMBSTONE:
                        continue
                    yield encoded, value

            stream = merged()
            first = next(stream, None)
            if first is None:
                replacement = []
            else:
                def chain():
                    yield first
                    yield from stream

                run = SortedRun.create(
                    self._runs_dir, self._next_seq, chain(),
                    count_hint=sum(r.count for r in group))
                self._next_seq += 1
                replacement = [run]
            self._runs[start:start + length] = replacement
            for old in group:
                old.close()
                # The files stay on disk until no manifest references
                # them (_gc_runs); a rollback to an older manifest must
                # still find them.
            metrics.count("state.compactions")

    # ------------------------------------------------------------------
    # Versioned persistence
    # ------------------------------------------------------------------
    def commit(self, version: int) -> dict:
        """Delta checkpoint: seal the memtable, then write a manifest.

        The manifest lists every live run (sequence, entry count,
        SHA-256) oldest-first plus ``next_seq`` and the live-key count;
        it is self-contained, so restore never replays a delta chain.
        Cost is O(keys written since the last commit), not O(total
        state) — unchanged runs are referenced, not rewritten.
        """
        fault_point("state.commit", version=version,
                    operator=os.path.basename(self._directory))
        written = sum(
            len(shard.dirty) + len(shard.removed) for shard in self._shards)
        self._flush()
        manifest = {
            "kind": "manifest",
            "live_keys": self._live_count,
            "next_seq": self._next_seq,
            "runs": [
                {"seq": run.seq, "count": run.count, "sha256": run.sha256}
                for run in reversed(self._runs)
            ],
        }
        atomic_write_json(self._path(version, "manifest"), manifest)
        for shard in self._shards:
            shard.dirty.clear()
            shard.removed.clear()
        self.last_committed_version = version
        return {"version": version, "keys_written": written,
                "num_keys": self._live_count, "backend": "tiered",
                "runs": len(self._runs)}

    def prepare_commit(self, version: int, group):
        """Pipelined commit: persist now, defer only the fsyncs.

        Run files and the manifest are written on the epoch thread
        (sealing and compaction mutate the run list, which must stay
        single-threaded for byte-identical crash replay), but their
        fsyncs register with ``group`` — the blocking part of the commit
        moves off the critical path onto the flusher's group sync.  The
        returned job carries only the report; executing it is a no-op.
        """
        from repro.storage import deferred_fsync
        from repro.streaming.state import PendingStateWrite

        with deferred_fsync(group):
            report = self.commit(version)
        return PendingStateWrite(
            report, operator=os.path.basename(self._directory),
            version=version)

    def _manifest_versions(self, versions: dict) -> list:
        return sorted(v for v, kinds in versions.items() if "manifest" in kinds)

    def restore(self, version):
        """Reset to the newest manifest <= ``version``.

        Also accepts dict-backend checkpoints (``snapshot``/``delta``
        chains) for the version range before a backend switch: the
        merged legacy state loads into the memtable and spills on the
        next over-budget write.  Shards are rebuilt empty and the runs
        are shard-agnostic, so restoring at any shard count is exact
        rescaling, same as the dict backend.
        """
        for run in self._runs:
            run.close()
        self._runs = []
        self._shards = _make_shards(self.num_shards)
        self._key_cache.clear()
        self._mem_bytes = 0
        self._live_count = 0
        self.last_committed_version = None
        if version is None:
            self._rebuild_expiry_index()
            return None
        versions = self._available_versions()
        manifests = [v for v in self._manifest_versions(versions)
                     if v <= version]
        legacy = [v for v in sorted(versions)
                  if v <= version and versions[v] & {"snapshot", "delta"}]
        if manifests and (not legacy or manifests[-1] >= legacy[-1]):
            target = manifests[-1]
            manifest = read_json(self._path(target, "manifest"))
            self._next_seq = manifest["next_seq"]
            self._runs = [
                SortedRun.open(self._runs_dir, entry["seq"])
                for entry in reversed(manifest["runs"])
            ]
            self._live_count = manifest["live_keys"]
            self.last_committed_version = target
            self._rebuild_expiry_index()
            return target
        if legacy:
            return self._restore_legacy(versions, legacy)
        self._rebuild_expiry_index()
        return None

    def _restore_legacy(self, versions: dict, usable: list):
        """Load a dict-backend snapshot+delta chain into the memtable."""
        base = None
        for v in reversed(usable):
            if "snapshot" in versions[v]:
                base = v
                break
        merged = {}
        if base is not None:
            merged = dict(read_json(self._path(base, "snapshot"))["data"])
        for v in usable:
            if base is not None and v <= base:
                continue
            delta = read_json(self._path(v, "delta"))
            merged.update(delta["puts"])
            for key in delta["removes"]:
                merged.pop(key, None)
        for encoded, value in merged.items():
            shard = self._shards[self.shard_index(decode_key(encoded))]
            shard.data[encoded] = value
            self._mem_bytes += _entry_bytes(encoded, value)
        self._live_count = len(merged)
        # Never reuse a sequence a later (tiered) manifest references.
        self._next_seq = 1 + max(
            (int(name.split(".")[0])
             for name in list_files(self._runs_dir, ".run")),
            default=-1,
        )
        self.last_committed_version = usable[-1]
        self._rebuild_expiry_index()
        return usable[-1]

    def oldest_restorable_version(self):
        versions = self._available_versions()
        if not versions:
            return None
        legacy = {v: kinds for v, kinds in versions.items()
                  if kinds & {"snapshot", "delta"}}
        if legacy:
            snapshots = [v for v, kinds in legacy.items()
                         if "snapshot" in kinds]
            if min(legacy) < min(snapshots, default=float("inf")):
                return min(legacy)
            if snapshots:
                return min(snapshots)
        manifests = self._manifest_versions(versions)
        return manifests[0] if manifests else None

    def prune(self, keep_from_version: int) -> int:
        """Drop checkpoints below the newest restore anchor <= horizon,
        then delete run files no remaining manifest references."""
        versions = self._available_versions()
        anchors = sorted(
            v for v, kinds in versions.items()
            if v <= keep_from_version and kinds & {"snapshot", "manifest"}
        )
        if not anchors:
            return 0
        base = anchors[-1]
        removed = 0
        for v, kinds in versions.items():
            for kind in kinds:
                if v < base or (v == base and kind == "delta"):
                    path = self._path(v, kind)
                    if os.path.exists(path):
                        os.unlink(path)
                        removed += 1
        return removed + self._gc_runs()

    def _gc_runs(self) -> int:
        """Delete run (+meta) files not referenced by any manifest on
        disk nor held open by this handle.  Driver-only by construction:
        called from ``__init__`` and ``prune``, never ``restore``."""
        referenced = {run.seq for run in self._runs}
        for name in list_files(self._directory, ".json"):
            if ".manifest." not in name:
                continue
            try:
                doc = read_json(os.path.join(self._directory, name))
            except (ValueError, OSError):
                continue
            referenced.update(entry["seq"] for entry in doc.get("runs", ()))
        removed = 0
        for name in list_files(self._runs_dir):
            stem = name.split(".")[0]
            if not stem.isdigit() or int(stem) in referenced:
                continue
            os.unlink(os.path.join(self._runs_dir, name))
            if name.endswith(".run"):
                removed += 1
        return removed
