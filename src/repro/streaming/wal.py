"""Write-ahead log: human-readable JSON epoch records (§1, §6.1).

Layout under a query's checkpoint directory::

    <checkpoint>/metadata.json          query id, output mode
    <checkpoint>/offsets/<epoch>.json   start/end offsets per source +
                                        watermark state for the epoch
    <checkpoint>/commits/<epoch>.json   written after the sink accepted
                                        the epoch's output

The two-file protocol is the paper's Figure 4: an epoch whose offsets
entry exists but whose commit entry does not is the (at most one)
partially executed epoch; recovery re-runs it against the idempotent
sink.  Because entries are plain JSON, administrators can inspect them
and manually roll back by deleting entries (§7.2) — exposed here as
:meth:`WriteAheadLog.rollback_to`.
"""

from __future__ import annotations

import json
import os

from repro.observability import metrics
from repro.storage import (
    atomic_write_json,
    group_write_text,
    list_files,
    read_json,
    repair_torn_tail,
)
from repro.testing.faults import fault_point


class WriteAheadLog:
    """Offsets + commits log for one streaming query."""

    def __init__(self, checkpoint_dir: str):
        self.checkpoint_dir = checkpoint_dir
        self._offsets_dir = os.path.join(checkpoint_dir, "offsets")
        self._commits_dir = os.path.join(checkpoint_dir, "commits")
        os.makedirs(self._offsets_dir, exist_ok=True)
        os.makedirs(self._commits_dir, exist_ok=True)
        #: Torn log entries quarantined on open.  A crash can leave the
        #: newest offsets or commit entry truncated (a torn write that
        #: became visible); treating it as never written is exactly the
        #: recovery the two-file protocol prescribes — without this, a
        #: restart dies on the unreadable JSON forever (a crash loop the
        #: fault sweep exposed).
        self.repaired = repair_torn_tail(self._offsets_dir)
        self.repaired += repair_torn_tail(self._commits_dir)
        # metadata.json too: write_metadata no-ops when the file exists,
        # so a torn one would otherwise never be rewritten.
        meta_path = os.path.join(checkpoint_dir, "metadata.json")
        if os.path.exists(meta_path):
            try:
                read_json(meta_path)
            except (ValueError, OSError):
                os.unlink(meta_path)
                self.repaired.append(meta_path)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def write_metadata(self, payload: dict) -> None:
        """Write query metadata once (no-op if present)."""
        path = os.path.join(self.checkpoint_dir, "metadata.json")
        if not os.path.exists(path):
            atomic_write_json(path, payload)

    def read_metadata(self) -> dict:
        """Read query metadata ({} when absent)."""
        path = os.path.join(self.checkpoint_dir, "metadata.json")
        return read_json(path) if os.path.exists(path) else {}

    # ------------------------------------------------------------------
    # Offsets log
    # ------------------------------------------------------------------
    def _epoch_path(self, directory: str, epoch: int) -> str:
        return os.path.join(directory, f"{epoch:010d}.json")

    def write_offsets(self, epoch: int, entry: dict, group=None) -> None:
        """Durably record an epoch's planned offsets *before* processing.

        ``entry`` holds ``{"sources": {name: {"start": .., "end": ..}},
        "watermarks": {...}}``; this is the paper's "master writes the
        start and end offsets of each epoch durably to the log".

        With ``group`` (a :class:`~repro.storage.SyncGroup`), the entry
        becomes *visible* immediately but its fsync is deferred to the
        group — the pipelined engine syncs once per epoch before any
        external effect, batching the offsets and commit fsyncs of
        adjacent epochs through single directory fsyncs.  Bytes written
        are identical either way.
        """
        fault_point("wal.offsets", epoch=epoch)
        payload = dict(entry)
        payload["epoch"] = epoch
        self._write_entry(self._epoch_path(self._offsets_dir, epoch),
                          payload, epoch, group)
        metrics.count("wal.offsets_written")

    def _write_entry(self, path: str, payload: dict, epoch: int, group) -> None:
        if group is None:
            atomic_write_json(path, payload)
        else:
            group_write_text(
                path, json.dumps(payload, indent=2, sort_keys=True), group,
                extra_point="wal.group_commit_crash", epoch=epoch)

    def read_offsets(self, epoch: int) -> dict:
        """Read one epoch's offsets entry."""
        return read_json(self._epoch_path(self._offsets_dir, epoch))

    def _epochs_in(self, directory: str) -> list:
        return [int(os.path.splitext(n)[0]) for n in list_files(directory, ".json")]

    def logged_epochs(self) -> list:
        """All epochs with an offsets entry, ascending."""
        return self._epochs_in(self._offsets_dir)

    def latest_logged_epoch(self):
        """Newest epoch with an offsets entry, or None."""
        epochs = self.logged_epochs()
        return epochs[-1] if epochs else None

    # ------------------------------------------------------------------
    # Commits log
    # ------------------------------------------------------------------
    def write_commit(self, epoch: int, extra: dict = None, group=None) -> None:
        """Record that the sink durably accepted the epoch's output.

        ``extra`` carries small post-epoch facts recovery needs without
        reprocessing — currently the advanced watermark state.  ``group``
        defers the fsync exactly as in :meth:`write_offsets`; the entry's
        *visibility* ordering (after the sink write, before the next
        epoch's offsets) is unchanged, which is what Figure 4's
        at-most-one-uncommitted-epoch invariant rests on.
        """
        fault_point("wal.commit", epoch=epoch)
        payload = {"epoch": epoch}
        if extra:
            payload.update(extra)
        self._write_entry(self._epoch_path(self._commits_dir, epoch),
                          payload, epoch, group)
        metrics.count("wal.commits_written")

    def read_commit(self, epoch: int) -> dict:
        """Read one epoch's commit entry."""
        return read_json(self._epoch_path(self._commits_dir, epoch))

    def is_committed(self, epoch: int) -> bool:
        """True if the epoch's commit entry exists."""
        return os.path.exists(self._epoch_path(self._commits_dir, epoch))

    def committed_epochs(self) -> list:
        """All committed epochs, ascending."""
        return self._epochs_in(self._commits_dir)

    def latest_committed_epoch(self):
        """Newest committed epoch, or None."""
        epochs = self.committed_epochs()
        return epochs[-1] if epochs else None

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def purge_before(self, epoch: int) -> int:
        """Remove log entries older than ``epoch`` (log retention).

        Rollback is only possible to retained epochs, matching the
        paper's note that rollbacks depend on the message bus retaining
        the data (§7.2) — the log's retention is the other half.
        Returns the number of entries removed.
        """
        removed = 0
        for directory in (self._offsets_dir, self._commits_dir):
            for logged in self._epochs_in(directory):
                if logged < epoch:
                    os.unlink(self._epoch_path(directory, logged))
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    # Manual rollback (§7.2)
    # ------------------------------------------------------------------
    def rollback_to(self, epoch: int) -> None:
        """Discard all log entries *after* ``epoch``.

        On the next restart the query recomputes from that prefix of the
        input, which is exactly the manual-rollback procedure the paper
        describes (the JSON log makes the epoch -> offsets mapping
        inspectable).  Pass ``epoch=-1`` to roll back to the beginning.
        """
        for directory in (self._offsets_dir, self._commits_dir):
            for logged in self._epochs_in(directory):
                if logged > epoch:
                    os.unlink(self._epoch_path(directory, logged))
