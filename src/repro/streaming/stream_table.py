"""Stream tables: one query's result table feeding another query.

``writer.to_table("silver")`` makes a query publish its epoch outputs to
a named :class:`StreamTable`; ``session.read_stream_table("silver")``
reads that table back as a streaming source.  The table is a durable
changelog — in ``retract`` mode rows keep their ``__weight__`` column,
so a downstream query sees the upstream's Z-set deltas and maintains its
own result incrementally (a cascade of materialized views, each stage
with its own checkpoint, watermark, and exactly-once commit).

The table behaves like an in-process message bus topic: the sink side
appends each committed epoch's rows exactly once (idempotent in
``epoch_id``), and the source side addresses rows by integer offset with
full retention, satisfying the replayability contract (§3, §6.1) that
downstream recovery depends on.
"""

from __future__ import annotations

import threading

from repro.sinks.base import Sink
from repro.sql.batch import RecordBatch
from repro.sql.types import StructType
from repro.sources.base import Source, SourceDescriptor, ingest_floor_from_segments
from repro.testing.faults import fault_point

PARTITION = "0"


class StreamTable(Sink, Source, SourceDescriptor):
    """A named changelog bridging two streaming queries.

    One instance is shared by the writing query (as its sink) and any
    number of reading queries (as their source), surviving restarts of
    either side the way an external bus would.  The schema is bound when
    the writing query starts — weighted (with ``__weight__``) when it
    writes in ``retract`` mode, plain when it appends.
    """

    name = "stream_table"
    supported_modes = ("append", "retract")

    def __init__(self, table_name: str):
        self.table_name = table_name
        self.schema = None  # bound by the writing query's start()
        self._rows = []
        self._epochs = set()
        self._lock = threading.Lock()
        self.key_names = []
        #: Ingest-floor propagation (end-to-end event-time lag, §7.4):
        #: the writing engine announces each epoch's oldest source-ingest
        #: timestamp via ``note_epoch_ingest`` before delivering the
        #: batch; the appended row range inherits it, so a downstream
        #: query's ``ingest_floor`` sees the *original* bronze ingest
        #: time, not this stage's write time.
        self._ingest = []
        self._pending_ingest = {}

    # -- sink side ------------------------------------------------------
    def bind_schema(self, schema: StructType, mode: str) -> None:
        """Fix the table's row schema from the writing query's output."""
        with self._lock:
            if self.schema is None:
                self.schema = schema
            elif self.schema != schema:
                raise ValueError(
                    f"stream table {self.table_name!r} already bound to "
                    f"{self.schema!r}; a restarted writer must produce "
                    f"the same schema, got {schema!r}"
                )

    def note_epoch_ingest(self, epoch_id: int, ingest_time) -> None:
        """Optional sink hook: the writing engine's ingest floor for the
        epoch it is about to deliver (engine falls back to the epoch's
        trigger time when its sources don't track ingest)."""
        with self._lock:
            self._pending_ingest[epoch_id] = ingest_time

    def add_batch(self, epoch_id: int, batch: RecordBatch, mode: str) -> None:
        fault_point("sink.add_batch", epoch=epoch_id, sink="stream_table")
        with self._lock:
            pending = self._pending_ingest.pop(epoch_id, None)
            if epoch_id in self._epochs:
                return  # idempotent re-delivery after recovery
            self._rows.extend(batch.to_rows())
            if pending is not None and batch.num_rows:
                self._ingest.append((len(self._rows), pending))
            self._epochs.add(epoch_id)
            self._count_commit(batch.num_rows)

    def ingest_floor(self, start: dict, end: dict):
        """Oldest propagated ingest timestamp in ``[start, end)``."""
        with self._lock:
            return ingest_floor_from_segments(
                self._ingest, start.get(PARTITION, 0), end.get(PARTITION, 0))

    def last_committed_epoch(self):
        with self._lock:
            return max(self._epochs) if self._epochs else None

    # -- source side ----------------------------------------------------
    def create(self) -> "StreamTable":
        return self

    def partitions(self) -> list:
        return [PARTITION]

    def initial_offsets(self) -> dict:
        return {PARTITION: 0}

    def latest_offsets(self) -> dict:
        with self._lock:
            return {PARTITION: len(self._rows)}

    def get_partition_batch(self, partition: str, start: int, end: int) -> RecordBatch:
        with self._lock:
            rows = self._rows[start:end]
        return RecordBatch.from_rows(rows, self.schema)

    def get_batch(self, start: dict, end: dict) -> RecordBatch:
        return self.get_partition_batch(
            PARTITION, start.get(PARTITION, 0), end[PARTITION]
        )
