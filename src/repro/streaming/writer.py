"""DataStreamWriter: configure and start a streaming query.

The builder mirrors the paper's example (§4.1)::

    query = (counts.write_stream
             .format("file").option("path", "/counts")
             .output_mode("complete")
             .start("/checkpoints/counts"))

Formats: ``memory`` (queryable in-memory table, registered as a temp
view under ``query_name``), ``file`` (transactional file table),
``kafka`` (bus topic), ``console``, ``foreach``, or a custom
:class:`~repro.sinks.base.Sink` via :meth:`DataStreamWriter.sink`.
"""

from __future__ import annotations

import os
import tempfile

from repro.sql.expressions import AnalysisError
from repro.streaming.query import StreamingQuery
from repro.streaming.triggers import (
    AvailableNowTrigger,
    ContinuousTrigger,
    ManualTrigger,
    OnceTrigger,
    ProcessingTimeTrigger,
)


class DataStreamWriter:
    """Builder for starting a streaming query on a DataFrame."""

    def __init__(self, df):
        self._df = df
        self._format = "memory"
        self._options = {}
        self._mode = "append"
        self._trigger = ManualTrigger()
        self._name = None
        self._sink = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def format(self, fmt: str) -> "DataStreamWriter":  # noqa: A003
        """Choose the sink format."""
        self._format = fmt
        return self

    def sink(self, sink) -> "DataStreamWriter":
        """Use a pre-built Sink instance."""
        self._sink = sink
        return self

    def option(self, key: str, value) -> "DataStreamWriter":
        """Set a sink/engine option (``path``, ``broker``, ``topic``,
        ``max_records_per_epoch``, ``state_checkpoint_interval``...)."""
        self._options[key] = value
        return self

    def output_mode(self, mode: str) -> "DataStreamWriter":
        """``append`` (default), ``update`` or ``complete`` (§4.2)."""
        self._mode = mode
        return self

    def query_name(self, name: str) -> "DataStreamWriter":
        """Name the query; memory sinks register a temp view under it."""
        self._name = name
        return self

    def trigger(self, interval=None, once: bool = False,
                available_now: bool = False, continuous=None,
                manual: bool = False) -> "DataStreamWriter":
        """Choose the trigger (§4): a processing-time interval, run-once,
        available-now, manual (synchronous driving, the default), or
        continuous processing (§6.3)."""
        chosen = [interval is not None, once, available_now,
                  continuous is not None, manual]
        if sum(chosen) != 1:
            raise ValueError("specify exactly one trigger kind")
        if once:
            self._trigger = OnceTrigger()
        elif available_now:
            self._trigger = AvailableNowTrigger()
        elif continuous is not None:
            self._trigger = ContinuousTrigger(continuous)
        elif manual:
            self._trigger = ManualTrigger()
        else:
            self._trigger = ProcessingTimeTrigger(interval)
        return self

    def to_table(self, name: str) -> "DataStreamWriter":
        """Publish the query's output to a named stream table.

        Another query can read it back with
        ``session.read_stream_table(name)``, forming an incrementally
        maintained cascade; in ``retract`` mode the table carries the
        upstream's Z-set deltas (``__weight__`` column) downstream.
        """
        self._format = "stream_table"
        self._options["table_name"] = name
        return self

    def foreach(self, fn) -> "DataStreamWriter":
        """Shortcut for the foreach sink: ``fn(epoch_id, rows, mode)``."""
        from repro.sinks.foreach import ForeachSink

        self._format = "foreach"
        self._sink = ForeachSink(fn)
        return self

    def foreach_batch(self, fn) -> "DataStreamWriter":
        """Each epoch's output as a batch DataFrame: ``fn(df, epoch_id)``."""
        from repro.sinks.foreach import ForeachBatchSink

        self._format = "foreach_batch"
        self._sink = ForeachBatchSink(fn, self._df._session)
        return self

    # ------------------------------------------------------------------
    # Start
    # ------------------------------------------------------------------
    def _build_sink(self):
        if self._sink is not None:
            return self._sink
        if self._format == "memory":
            from repro.sinks.memory import MemorySink

            return MemorySink()
        if self._format == "console":
            from repro.sinks.console import ConsoleSink

            return ConsoleSink()
        if self._format == "file":
            from repro.sinks.file import TransactionalFileSink

            path = self._options.get("path")
            if not path:
                raise AnalysisError("file sink requires option('path', ...)")
            return TransactionalFileSink(
                path, writer_id=self._name or "streaming-query")
        if self._format == "stream_table":
            from repro.streaming.stream_table import StreamTable

            table_name = self._options.get("table_name") or self._name
            if not table_name:
                raise AnalysisError("to_table sink requires a table name")
            tables = self._df._session.stream_tables
            table = tables.get(table_name)
            if table is None:
                table = StreamTable(table_name)
                tables[table_name] = table
            return table
        if self._format == "kafka":
            from repro.sinks.kafka import KafkaSink

            broker = self._options.get("broker")
            topic = self._options.get("topic")
            if broker is None or topic is None:
                raise AnalysisError("kafka sink requires broker and topic options")
            return KafkaSink(
                broker, topic,
                query_id=self._name or "anonymous",
                partition_key=self._options.get("partition_key"),
            )
        raise AnalysisError(f"unknown sink format {self._format!r}")

    def start(self, checkpoint_dir: str = None, use_thread: bool = None) -> StreamingQuery:
        """Start the query; returns its :class:`StreamingQuery` handle.

        ``checkpoint_dir`` holds the WAL and state store; restarting with
        the same directory resumes from where the query left off (§7.1).
        Without one, a temp directory is used (no cross-run recovery).
        ``use_thread=False`` builds a synchronous query you drive with
        ``run_epoch()`` / ``process_all_available()`` — the default for
        the run-once trigger.
        """
        if checkpoint_dir is None:
            checkpoint_dir = tempfile.mkdtemp(prefix="repro-checkpoint-")
        sink = self._build_sink()

        if isinstance(self._trigger, ContinuousTrigger):
            from repro.streaming.continuous import ContinuousEngine

            engine = ContinuousEngine(
                self._df.plan, sink, self._mode, checkpoint_dir,
                epoch_interval=self._trigger.epoch_interval,
                latency_column=self._options.get("latency_column"),
            )
            query = StreamingQuery(engine, self._trigger, self._name, use_thread=False)
            engine.start()
            self._register_view(sink)
            self._df._session.streams.register(query)
            return query

        from repro.streaming.microbatch import MicrobatchEngine

        scheduler = self._options.get("scheduler")
        num_shards = self._options.get("num_shards")
        # ``.option("executor", "process")`` / REPRO_EXECUTOR=process:
        # build a process-backed scheduler owned by the engine (stop()
        # shuts it down).  Continuous mode (above) never takes this
        # path — it stays pinned to the single-partition fast path.
        executor = self._options.get("executor") or os.environ.get("REPRO_EXECUTOR")
        owns_scheduler = False
        if scheduler is None and executor == "process":
            from repro.cluster.scheduler import TaskScheduler

            workers = int(
                self._options.get("num_workers")
                or os.environ.get("REPRO_NUM_WORKERS")
                or min(4, os.cpu_count() or 1)
            )
            scheduler = TaskScheduler(
                workers, executor="process", speculation=False)
            owns_scheduler = True
            if num_shards is None and "REPRO_NUM_SHARDS" not in os.environ:
                # Default one shard per worker so the pool has work.
                num_shards = workers
        engine = MicrobatchEngine(
            self._df.plan, sink, self._mode, checkpoint_dir,
            max_records_per_epoch=self._options.get("max_records_per_epoch"),
            state_checkpoint_interval=self._options.get("state_checkpoint_interval", 1),
            snapshot_interval=self._options.get("snapshot_interval", 10),
            scheduler=scheduler,
            retain_epochs=self._options.get("retain_epochs"),
            num_shards=num_shards,
            state_backend=self._options.get("state_backend"),
            state_memtable_bytes=(
                None if self._options.get("state_memtable_bytes") is None
                else int(self._options["state_memtable_bytes"])
            ),
            # ``.option("pipeline", "on"/"off")``; unset defers to
            # REPRO_PIPELINE=1 inside the engine.
            pipeline=self._options.get("pipeline"),
        )
        engine._owns_scheduler = owns_scheduler
        from repro.streaming.stream_table import StreamTable

        if isinstance(sink, StreamTable):
            # The table's row schema is the query's output schema —
            # weighted when the query emits retraction deltas.
            sink.bind_schema(engine.plan.root.output_schema, self._mode)
        if use_thread is None:
            # Only interval triggers need a driver thread; once /
            # available-now / manual triggers run synchronously.
            use_thread = isinstance(self._trigger, ProcessingTimeTrigger)
        query = StreamingQuery(engine, self._trigger, self._name, use_thread=use_thread)
        if not use_thread:
            if isinstance(self._trigger, OnceTrigger):
                engine.run_epoch()
            elif isinstance(self._trigger, AvailableNowTrigger):
                engine.run_available()
        self._register_view(sink)
        self._df._session.streams.register(query)
        return query

    def _register_view(self, sink) -> None:
        """Memory sinks become queryable temp views (§3: interactive
        queries on consistent snapshots of stream output)."""
        from repro.sinks.memory import MemorySink

        if not isinstance(sink, MemorySink) or not self._name:
            return
        session = self._df._session
        schema = self._df.schema
        if self._mode == "retract":
            # The sink's rows() are the live table: weight already applied.
            from repro.streaming.zset import data_schema

            schema = data_schema(schema)

        class _LiveProvider:
            def read_batches(self):
                from repro.sql.batch import RecordBatch

                return [RecordBatch.from_rows(sink.rows(), schema)]

        from repro.sql import logical as L
        from repro.sql.dataframe import DataFrame

        scan = L.Scan(schema, _LiveProvider(), False, name=f"memory:{self._name}")
        session.catalog[self._name] = DataFrame(scan, session)
