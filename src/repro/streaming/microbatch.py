"""Microbatch execution engine (§6.1–§6.2).

Each epoch follows Figure 4's protocol exactly:

1. the master picks start/end offsets per source and writes them to the
   write-ahead log *before* processing;
2. the incremental operator tree processes the epoch's new data,
   updating operator state;
3. the (idempotent) sink receives the epoch's output;
4. the commit log records the epoch; state checkpoints to the state
   store (possibly less often than every epoch).

Recovery (:meth:`MicrobatchEngine._recover`) is §6.1 step 4: restore the
newest state checkpoint, replay logged epochs with output disabled to
rebuild state, then re-run the at-most-one uncommitted epoch relying on
sink idempotence.

Adaptive batching (§7.3) falls out of the design: an epoch consumes
*all* data accumulated since the previous one (optionally capped), so a
backlogged query automatically runs larger epochs until it catches up.
"""

from __future__ import annotations

import os
import time

from repro import observability
from repro.observability import metrics, tracing
from repro.sql.batch import RecordBatch
from repro.streaming.incrementalizer import incrementalize
from repro.streaming.operators import EpochContext
from repro.streaming.progress import EpochProgress, ProgressReporter
from repro.streaming.state import StateStore
from repro.streaming.wal import WriteAheadLog
from repro.streaming.watermark import WatermarkTracker
from repro.testing.faults import fault_point


class _Phase:
    """Span + stage-timing bracket around one epoch phase (§7.4).

    Combines a ``trace_span`` (no-op when tracing is off) with an entry
    in the epoch's ``stage_timings`` dict (skipped when ``timings`` is
    None, i.e. observability disabled) so each phase costs one branch
    plus a null context manager on the disabled path.
    """

    __slots__ = ("name", "timings", "span", "start")

    def __init__(self, name: str, timings):
        self.name = name
        self.timings = timings
        self.span = tracing.trace_span(name)

    def __enter__(self) -> "_Phase":
        self.span.__enter__()
        if self.timings is not None:
            self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self.timings is not None:
            self.timings[self.name] = (
                self.timings.get(self.name, 0.0)
                + time.perf_counter() - self.start
            )
        self.span.__exit__(*exc)


class MicrobatchEngine:
    """Drives one streaming query in microbatch mode."""

    def __init__(self, plan, sink, output_mode: str, checkpoint_dir: str,
                 max_records_per_epoch: int = None,
                 state_checkpoint_interval: int = 1,
                 snapshot_interval: int = 10,
                 scheduler=None,
                 retain_epochs: int = None,
                 num_shards: int = None,
                 state_backend: str = None,
                 state_memtable_bytes: int = None,
                 clock=time.time):
        self.sink = sink
        self.output_mode = output_mode
        self.clock = clock
        self._max_records = max_records_per_epoch
        self._state_checkpoint_interval = max(1, state_checkpoint_interval)
        #: Optional cluster TaskScheduler: per-partition reads and the
        #: stateful operators' per-shard work run as independent tasks
        #: ("map tasks", §6.2), giving the engine fine-grained retry and
        #: straggler mitigation for the whole epoch.
        self.scheduler = scheduler
        #: Keep at least this many recent epochs of WAL + state for
        #: manual rollback (§7.2); None = retain everything.
        self._retain_epochs = retain_epochs
        #: Hash-partition count for operator state and epoch tasks
        #: (§6.2).  Checkpoints are shard-count independent, so a query
        #: may restart at a different count (rescaling): restore simply
        #: re-hashes every key.  REPRO_NUM_SHARDS supplies an env-driven
        #: default so CI can exercise the partitioned path everywhere.
        if num_shards is None:
            num_shards = int(os.environ.get("REPRO_NUM_SHARDS", "1"))
        self.num_shards = max(1, num_shards)

        self.state_store = StateStore(checkpoint_dir, snapshot_interval,
                                      num_shards=self.num_shards,
                                      backend=state_backend,
                                      memtable_bytes=state_memtable_bytes)
        with tracing.trace_span("plan-compile"):
            self.plan = incrementalize(plan, output_mode, self.state_store,
                                       num_shards=self.num_shards)
        self.sink.set_key_names(self.plan.key_names)
        if output_mode not in sink.supported_modes:
            raise ValueError(
                f"sink {type(sink).__name__} does not support output mode "
                f"{output_mode!r} (supports {sink.supported_modes})"
            )

        self.wal = WriteAheadLog(checkpoint_dir)
        existing = self.wal.read_metadata()
        if existing and existing.get("output_mode") not in (None, output_mode):
            raise ValueError(
                f"checkpoint {checkpoint_dir!r} was written by a query in "
                f"{existing['output_mode']!r} mode; restarting it in "
                f"{output_mode!r} mode would corrupt the sink contract "
                "(use a fresh checkpoint directory)"
            )
        self.wal.write_metadata({"output_mode": output_mode})
        self.watermarks = WatermarkTracker(self.plan.watermark_delays)
        self.progress = ProgressReporter()
        self._attach_event_log(checkpoint_dir)

        #: Live sources, created from descriptors ("re-attach" on restart).
        self.sources = {name: desc.create() for name, desc in self.plan.sources}
        self._start_offsets = {
            name: source.initial_offsets() for name, source in self.sources.items()
        }
        self.next_epoch = 0
        #: True when the writer built the scheduler for this engine (via
        #: the ``executor`` option); stop() then owns its shutdown.
        self._owns_scheduler = False
        self._recover()
        # A process-backed scheduler forks its workers from this fully
        # recovered engine: compiled plans and restored state are
        # inherited, not rebuilt per worker.
        bind = getattr(self.scheduler, "bind_engine", None)
        if bind is not None:
            bind(self)

    def _attach_event_log(self, checkpoint_dir: str) -> None:
        """Append each epoch's progress as a JSON line to the structured
        event log (§7.4): ``<checkpoint>/events.jsonl``.

        One append handle is held for the engine's lifetime (flushed per
        epoch so readers see completed lines) instead of reopening the
        file every epoch; :meth:`stop` closes it."""
        import json
        import os

        path = os.path.join(checkpoint_dir, "events.jsonl")
        self._event_log = open(path, "a", encoding="utf-8")

        def log_event(progress):
            if self._event_log.closed:
                return
            self._event_log.write(json.dumps(progress.to_json()) + "\n")
            self._event_log.flush()

        self.progress.listeners.append(log_event)

    def stop(self) -> None:
        """Release engine resources (idempotent); called by query.stop."""
        event_log = getattr(self, "_event_log", None)
        if event_log is not None and not event_log.closed:
            event_log.close()
        if getattr(self, "_owns_scheduler", False) and self.scheduler is not None:
            self.scheduler.shutdown()

    # ------------------------------------------------------------------
    # Recovery (§6.1 step 4)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        last = self.wal.latest_logged_epoch()
        if last is None:
            return
        committed = self.wal.is_committed(last)
        target = last if committed else last - 1

        restored = self.state_store.restore_all(target) if target >= 0 else None
        replay_from = 0 if restored is None else restored + 1

        # Rebuild state by replaying logged epochs with output disabled
        # ("loading the old state and running those epochs with the same
        # offsets while disabling output").
        for epoch in range(replay_from, target + 1):
            self._run_logged_epoch(epoch, output_enabled=False)
        if replay_from <= target:
            self.state_store.commit_all(target)

        if not committed:
            # At most one epoch may be partially written; re-run it and
            # let the idempotent sink deduplicate.
            self._run_logged_epoch(last, output_enabled=True)
            self.wal.write_commit(last, {"watermarks": self.watermarks.to_json()})
            self.state_store.commit_all(last)
        elif replay_from > target:
            # No replay happened; the post-epoch watermark state was
            # recorded in the commit entry.
            commit = self.wal.read_commit(last)
            self.watermarks.load_json(commit.get("watermarks", {}))

        entry = self.wal.read_offsets(last)
        for name, rng in entry["sources"].items():
            self._start_offsets[name] = rng["end"]
        self.next_epoch = last + 1

    def _run_logged_epoch(self, epoch: int, output_enabled: bool) -> None:
        """Re-execute an epoch exactly as logged in the WAL."""
        entry = self.wal.read_offsets(epoch)
        self.watermarks.load_json(entry.get("watermarks", {}))
        inputs = {
            name: self.sources[name].get_batch(rng["start"], rng["end"])
            for name, rng in entry["sources"].items()
        }
        ctx = EpochContext(
            epoch_id=epoch,
            inputs=inputs,
            watermarks=self.watermarks,
            processing_time=entry.get("trigger_time", self.clock()),
            output_mode=self.output_mode,
            output_enabled=output_enabled,
            is_first_epoch=epoch == 0,
            scheduler=self.scheduler,
        )
        result = self.plan.root.process(ctx)
        if output_enabled:
            self.sink.add_batch(epoch, result, self.output_mode)
        self.watermarks.advance()

    # ------------------------------------------------------------------
    # Normal epoch execution
    # ------------------------------------------------------------------
    def _available_end_offsets(self) -> dict:
        ends = {}
        for name, source in self.sources.items():
            latest = source.latest_offsets()
            start = self._start_offsets[name]
            if self._max_records is not None:
                capped = {}
                budget = self._max_records
                for partition in sorted(latest):
                    lo = start.get(partition, 0)
                    hi = latest[partition]
                    take = min(hi - lo, budget)
                    capped[partition] = lo + max(take, 0)
                    budget -= max(take, 0)
                ends[name] = capped
            else:
                ends[name] = latest
        return ends

    def _has_new_data(self, ends: dict) -> bool:
        for name, end in ends.items():
            start = self._start_offsets[name]
            if any(end[p] > start.get(p, 0) for p in end):
                return True
        return False

    def _has_pending_timeouts(self) -> bool:
        now = self.clock()
        return any(op.has_pending_timeout(now) for op in self.plan.stateful_ops)

    def run_epoch(self):
        """Run one epoch if there is work; returns EpochProgress or None.

        "Work" is new input data or an expired processing-time timeout in
        a stateful operator.
        """
        ends = self._available_end_offsets()
        if not self._has_new_data(ends) and not self._has_pending_timeouts():
            return None

        epoch = self.next_epoch
        with tracing.trace_span("epoch", epoch=epoch):
            progress = self._execute_epoch(epoch, ends)
        self.progress.record(progress)
        return progress

    def _execute_epoch(self, epoch: int, ends: dict) -> EpochProgress:
        """One epoch's Figure-4 protocol, with per-phase instrumentation."""
        trigger_time = self.clock()
        started = time.perf_counter()
        # Stage timings (and per-operator metrics) are only collected
        # while observability is enabled; None keeps every _Phase to a
        # single branch and omits the sections from events.jsonl.
        timings = {} if observability.active() else None
        fault_point("epoch.begin", epoch=epoch)

        # (1) Durably log the epoch's offsets before touching any data.
        with _Phase("wal-offsets", timings):
            self.wal.write_offsets(epoch, {
                "sources": {
                    name: {"start": self._start_offsets[name], "end": ends[name]}
                    for name in self.sources
                },
                "watermarks": self.watermarks.to_json(),
                "trigger_time": trigger_time,
            })

        fault_point("epoch.after_offsets", epoch=epoch)

        # (2) Read the epoch's new data and run the incremental plan.
        with _Phase("read-inputs", timings):
            inputs = self._fetch_inputs(ends)
        input_rows = sum(batch.num_rows for batch in inputs.values())
        ctx = EpochContext(
            epoch_id=epoch,
            inputs=inputs,
            watermarks=self.watermarks,
            processing_time=trigger_time,
            output_mode=self.output_mode,
            output_enabled=True,
            is_first_epoch=epoch == 0,
            scheduler=self.scheduler,
        )
        with _Phase("process", timings):
            result = self.plan.root.process(ctx)
        fault_point("epoch.after_process", epoch=epoch)

        # (3) Idempotent sink write, then (4) commit + state checkpoint.
        with _Phase("sink-write", timings):
            self.sink.add_batch(epoch, result, self.output_mode)
        fault_point("epoch.after_sink", epoch=epoch)
        self.watermarks.advance()
        with _Phase("wal-commit", timings):
            self.wal.write_commit(
                epoch, {"watermarks": self.watermarks.to_json()})
        fault_point("epoch.after_commit", epoch=epoch)
        if epoch % self._state_checkpoint_interval == 0:
            with _Phase("state-commit", timings):
                self.state_store.commit_all(epoch)
        self._enforce_retention(epoch)

        for name, source in self.sources.items():
            source.commit(ends[name])
            self._start_offsets[name] = ends[name]
        self.next_epoch = epoch + 1

        backlog = 0
        for name, source in self.sources.items():
            latest = source.latest_offsets()
            backlog += sum(
                max(latest[p] - ends[name].get(p, 0), 0) for p in latest
            )
        duration = time.perf_counter() - started
        state_keys = self.state_store.total_keys()
        progress = EpochProgress(
            epoch_id=epoch,
            trigger_time=trigger_time,
            duration_seconds=duration,
            input_rows=input_rows,
            output_rows=result.num_rows,
            backlog_rows=backlog,
            state_keys=state_keys,
            late_rows_dropped=ctx.metrics["late_rows_dropped"],
            watermarks={
                c: self.watermarks.current(c)
                for c in self.watermarks.columns
            },
            sources={
                name: {"start": self._start_offsets[name], "end": ends[name]}
                for name in self.sources
            },
            task_metrics=(
                self.scheduler.last_stage_report or {}
                if self.scheduler is not None else {}
            ),
            stage_timings=timings or {},
            operator_metrics=ctx.op_metrics,
        )
        metrics.count("engine.epochs")
        metrics.count("engine.rows_in", input_rows)
        metrics.count("engine.rows_out", result.num_rows)
        metrics.count("engine.late_rows_dropped",
                      ctx.metrics["late_rows_dropped"])
        metrics.set_gauge("engine.backlog_rows", backlog)
        metrics.set_gauge("engine.state_keys", state_keys)
        metrics.observe("engine.epoch_seconds", duration)
        return progress

    def _fetch_inputs(self, ends: dict) -> dict:
        """Read each source's new range, optionally as scheduler tasks.

        With a scheduler, one task per (source, partition) reads and
        decodes its range — tasks are idempotent (sources are replayable)
        so failed or speculated attempts are safe, giving the ingestion
        stage the §6.2 recovery properties.
        """
        if self.scheduler is None:
            return {
                name: source.get_batch(self._start_offsets[name], ends[name])
                for name, source in self.sources.items()
            }
        from repro.cluster.scheduler import Task
        from repro.sql.batch import RecordBatch

        tasks = []
        for name, source in self.sources.items():
            start = self._start_offsets[name]
            for partition in sorted(ends[name]):
                lo = start.get(partition, 0)
                hi = ends[name][partition]
                if hi > lo:
                    tasks.append(Task(
                        (name, partition),
                        source.get_partition_batch, (partition, lo, hi),
                    ))
        results = self.scheduler.run_stage(tasks)
        inputs = {}
        for name, source in self.sources.items():
            parts = [
                results[key] for key in sorted(results)
                if key[0] == name
            ]
            inputs[name] = RecordBatch.concat(parts, source.schema)
        return inputs

    def _enforce_retention(self, epoch: int) -> None:
        """GC state checkpoints and WAL entries beyond the rollback
        horizon.  Kept conservative: WAL entries are only purged below
        the oldest version the state store can still restore, so
        recovery and rollback to any retained epoch keep working."""
        if self._retain_epochs is None:
            return
        horizon = epoch - self._retain_epochs
        if horizon <= 0:
            return
        self.state_store.prune_all(horizon)
        oldest = self.state_store.oldest_restorable_version()
        if oldest is not None:
            self.wal.purge_before(min(horizon, oldest) + 1)
        elif not self.plan.stateful_ops:
            # Stateless queries need no state to replay: WAL retention
            # is bounded by the horizon alone.
            self.wal.purge_before(horizon + 1)

    def run_available(self):
        """Run epochs until the input is drained; returns progress list."""
        results = []
        while True:
            progress = self.run_epoch()
            if progress is None:
                return results
            results.append(progress)

    def result_batch_schema(self):
        """Schema of the query's output rows."""
        return self.plan.root.output_schema

    def empty_result(self) -> RecordBatch:
        """An empty output batch (schema carrier)."""
        return RecordBatch.empty(self.plan.root.output_schema)
