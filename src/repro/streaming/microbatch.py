"""Microbatch execution engine (§6.1–§6.2).

Each epoch follows Figure 4's protocol exactly:

1. the master picks start/end offsets per source and writes them to the
   write-ahead log *before* processing;
2. the incremental operator tree processes the epoch's new data,
   updating operator state;
3. the (idempotent) sink receives the epoch's output;
4. the commit log records the epoch; state checkpoints to the state
   store (possibly less often than every epoch).

Recovery (:meth:`MicrobatchEngine._recover`) is §6.1 step 4: restore the
newest state checkpoint, replay logged epochs with output disabled to
rebuild state, then re-run the at-most-one uncommitted epoch relying on
sink idempotence.

Adaptive batching (§7.3) falls out of the design: an epoch consumes
*all* data accumulated since the previous one (optionally capped), so a
backlogged query automatically runs larger epochs until it catches up.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import deque

from repro import observability
from repro.observability import bottleneck as bottleneck_model
from repro.observability import metrics, tracing
from repro.observability.flightrec import FlightRecorder
from repro.sql.batch import RecordBatch
from repro.sql.types import WEIGHT_COLUMN
from repro.storage import SyncGroup, deferred_fsync
from repro.streaming.incrementalizer import incrementalize
from repro.streaming.operators import EpochContext
from repro.streaming.progress import EpochProgress, ProgressReporter
from repro.streaming.state import StateStore
from repro.streaming.wal import WriteAheadLog
from repro.streaming.watermark import WatermarkTracker
from repro.testing.faults import fault_point

# ----------------------------------------------------------------------
# Fork gate: the process executor forks workers (initially and on
# respawn) from the engine thread.  A background flusher or prefetcher
# caught mid-write at fork time could leave a metrics/storage lock
# permanently held in the child, so every fork first parks the pipeline
# threads between work items via their gate locks.
# ----------------------------------------------------------------------
_PIPELINE_WORKERS = weakref.WeakSet()
_fork_hook_installed = False
_paused_gates = []


def _register_pipeline_worker(worker) -> None:
    global _fork_hook_installed
    _PIPELINE_WORKERS.add(worker)
    if not _fork_hook_installed and hasattr(os, "register_at_fork"):
        _fork_hook_installed = True
        os.register_at_fork(before=_pause_pipeline_workers,
                            after_in_parent=_resume_pipeline_workers,
                            after_in_child=_resume_pipeline_workers)


def _pause_pipeline_workers() -> None:
    for worker in list(_PIPELINE_WORKERS):
        worker._fork_gate.acquire()
        _paused_gates.append(worker._fork_gate)


def _resume_pipeline_workers() -> None:
    while _paused_gates:
        gate = _paused_gates.pop()
        try:
            gate.release()
        except RuntimeError:
            pass


class _AsyncStateFlusher:
    """Background writer for pipelined state checkpoints (§6.1).

    The engine thread captures each epoch's checkpoint synchronously
    (:meth:`StateStore.prepare_commit_all`) and submits the write jobs
    here; this thread performs the file writes under a shared
    :class:`SyncGroup`, fsyncing the state directories only every
    ``STATE_SYNC_EVERY`` versions (or at drain/stop) — a lagging state
    *file* is always recoverable by WAL replay, so its durability window
    may span a few epochs while the WAL's may not.

    Error contract: the first failure (including an injected
    ``CrashPoint``) permanently halts the flusher, modeling the writer
    dying mid-checkpoint; the engine re-raises it at the next epoch
    boundary, from where it reaches ``StreamingQuery.exception``.
    """

    #: State-directory fsync cadence, in commit batches.  Bounds the
    #: renamed-but-unsynced window to a few versions of replayable
    #: state while cutting steady-state fsyncs per epoch below one.
    STATE_SYNC_EVERY = 8

    def __init__(self, owner):
        self._owner_ref = weakref.ref(owner)
        self.group = SyncGroup()
        self._cv = threading.Condition()
        self._queue = deque()
        self._busy = False
        self._stopping = False
        self._thread = None
        self._error = None
        self._unsynced = 0
        self._fork_gate = threading.Lock()

    @property
    def error(self):
        return self._error

    def submit(self, version: int, jobs: list) -> None:
        """Queue one version's write jobs (engine thread)."""
        with self._cv:
            if self._error is not None or self._stopping:
                return  # surfaced at the next epoch boundary
            if self._thread is None:
                _register_pipeline_worker(self)
                self._thread = threading.Thread(
                    target=self._loop, name="state-flusher", daemon=True)
                self._thread.start()
            self._queue.append((version, jobs))
            metrics.set_gauge("pipeline.flusher_queue", len(self._queue))
            self._cv.notify_all()

    def drain(self) -> None:
        """Block until every queued job is written (or the flusher
        halted on an error — the caller checks ``error`` after)."""
        with self._cv:
            while (self._queue or self._busy) and self._error is None:
                self._cv.wait(timeout=1.0)

    def stop(self) -> None:
        """Drain, final-sync, and join (idempotent; engine thread)."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        if self._error is None:
            self.group.sync()

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopping:
                    self._cv.wait(timeout=5.0)
                    if self._owner_ref() is None and not self._queue:
                        return
                if not self._queue:
                    return  # stopping and drained
                version, jobs = self._queue.popleft()
                self._busy = True
            try:
                with self._fork_gate:
                    with tracing.trace_span("flusher:state-commit",
                                            version=version):
                        for i, job in enumerate(jobs):
                            fault_point("state.async_flush_crash",
                                        version=version, operator=job.operator)
                            job.execute(self.group)
                            fault_point("state.commit_all", version=version,
                                        operator=job.operator, committed=i + 1,
                                        total=len(jobs))
                    self._unsynced += 1
                    if self._unsynced >= self.STATE_SYNC_EVERY:
                        self.group.sync()
                        self._unsynced = 0
                with self._cv:
                    self._busy = False
                    metrics.set_gauge("pipeline.flusher_queue",
                                      len(self._queue))
                    metrics.set_gauge("pipeline.flushed_version", version)
                    self._cv.notify_all()
            except BaseException as exc:
                with self._cv:
                    self._error = exc
                    self._busy = False
                    self._queue.clear()
                    self._cv.notify_all()
                return


class _SourcePrefetcher:
    """Reads epoch N+1's source ranges while epoch N computes (§7.3).

    The engine requests a prefetch as soon as it holds epoch N's inputs;
    this thread snapshots the next available end offsets, reads the
    ranges directly from the (replayable, thread-safe) sources, and —
    under the process executor — pre-encodes the batches as shared-memory
    descriptors so the ship phase finds them ready.  ``claim`` hands the
    data to the next epoch when its start offsets match; any mismatch
    (recovery rewound, nothing was available yet) is a miss and the
    engine falls back to the inline read.  Reads never go through the
    scheduler: ``run_stage`` is busy executing epoch N's compute tasks.
    """

    def __init__(self, engine):
        self._engine_ref = weakref.ref(engine)
        self._cv = threading.Condition()
        self._request = None
        self._ready = None
        self._stopping = False
        self._thread = None
        self._error = None
        self._fork_gate = threading.Lock()

    @property
    def error(self):
        return self._error

    def request(self, ends: dict) -> None:
        """Ask for the ranges following ``ends`` (engine thread)."""
        starts = {name: dict(offsets) for name, offsets in ends.items()}
        with self._cv:
            if self._error is not None or self._stopping:
                return
            if self._thread is None:
                _register_pipeline_worker(self)
                self._thread = threading.Thread(
                    target=self._loop, name="source-prefetcher", daemon=True)
                self._thread.start()
            self._request = starts
            self._ready = None
            self._cv.notify_all()

    def claim(self, starts: dict):
        """Return ``(ends, inputs)`` for a completed prefetch matching
        ``starts``, or None (miss / empty prefetch / error)."""
        with self._cv:
            while self._request is not None and self._error is None:
                self._cv.wait(timeout=1.0)
            ready, self._ready = self._ready, None
        if ready is None:
            return None
        got_starts, ends, inputs = ready
        if ends is None or got_starts != starts:
            return None
        return ends, inputs

    def stop(self) -> None:
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def _loop(self) -> None:
        while True:
            with self._cv:
                while self._request is None and not self._stopping:
                    self._cv.wait(timeout=5.0)
                    if self._engine_ref() is None:
                        return
                if self._stopping:
                    return
                starts = self._request
            try:
                with self._fork_gate:
                    result = self._read(starts)
                with self._cv:
                    if self._request is starts:
                        self._request = None
                        self._ready = result
                        self._cv.notify_all()
            except BaseException as exc:
                with self._cv:
                    self._error = exc
                    self._request = None
                    self._cv.notify_all()
                return

    def _read(self, starts: dict):
        # Fires on every attempt — including empty ones — so the fault
        # point is reachable even in drain-style workloads where the
        # prefetcher rarely finds a backlog.
        fault_point("prefetch.crash")
        engine = self._engine_ref()
        if engine is None:
            return (starts, None, None)
        ends = engine._available_end_offsets(starts=starts)
        if not engine._has_new_data(ends, starts=starts):
            return (starts, None, None)
        with tracing.trace_span("prefetch:read"):
            inputs = {
                name: source.get_batch(starts[name], ends[name])
                for name, source in engine.sources.items()
            }
            scheduler = engine.scheduler
            pool = getattr(scheduler, "process_pool", None) \
                if scheduler is not None else None
            if pool is not None:
                pool.preship(inputs.values())
        return (starts, ends, inputs)


class _Phase:
    """Span + stage-timing bracket around one epoch phase (§7.4).

    Combines a ``trace_span`` (no-op when tracing is off) with an entry
    in the epoch's ``stage_timings`` dict (skipped when ``timings`` is
    None, i.e. observability disabled) so each phase costs one branch
    plus a null context manager on the disabled path.
    """

    __slots__ = ("name", "timings", "span", "start")

    def __init__(self, name: str, timings):
        self.name = name
        self.timings = timings
        self.span = tracing.trace_span(name)

    def __enter__(self) -> "_Phase":
        self.span.__enter__()
        if self.timings is not None:
            self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self.timings is not None:
            self.timings[self.name] = (
                self.timings.get(self.name, 0.0)
                + time.perf_counter() - self.start
            )
        self.span.__exit__(*exc)


class MicrobatchEngine:
    """Drives one streaming query in microbatch mode."""

    #: Pipelined mode: WAL group-sync cadence in epochs.  Adjacent
    #: epochs' offsets/commit (and file-sink) fsyncs batch through one
    #: directory-fsync round every this many epochs; idle drains and
    #: stop() always sync, so a query that catches up with its input is
    #: fully durable.  The unsynced window is a renamed-but-unfsynced
    #: WAL suffix — on a real power loss recovery replays from the last
    #: durable prefix and the idempotent sink absorbs re-delivery, the
    #: same contract async state checkpointing already relies on.
    WAL_SYNC_EVERY = 4

    def __init__(self, plan, sink, output_mode: str, checkpoint_dir: str,
                 max_records_per_epoch: int = None,
                 state_checkpoint_interval: int = 1,
                 snapshot_interval: int = 10,
                 scheduler=None,
                 retain_epochs: int = None,
                 num_shards: int = None,
                 state_backend: str = None,
                 state_memtable_bytes: int = None,
                 pipeline=None,
                 clock=time.time):
        self.sink = sink
        self.output_mode = output_mode
        self.clock = clock
        #: Pipelined epoch execution (async state flusher, group-commit
        #: WAL, source prefetch).  ``None`` defers to REPRO_PIPELINE=1;
        #: writer option strings ("on"/"off") are accepted as-is.  The
        #: sequential path is the golden reference: both modes produce
        #: byte-identical checkpoints and sink output.
        if pipeline is None:
            pipeline = os.environ.get("REPRO_PIPELINE", "") == "1"
        elif isinstance(pipeline, str):
            pipeline = pipeline.strip().lower() in ("on", "1", "true", "yes")
        self.pipelined = bool(pipeline)
        self._max_records = max_records_per_epoch
        self._state_checkpoint_interval = max(1, state_checkpoint_interval)
        #: Optional cluster TaskScheduler: per-partition reads and the
        #: stateful operators' per-shard work run as independent tasks
        #: ("map tasks", §6.2), giving the engine fine-grained retry and
        #: straggler mitigation for the whole epoch.
        self.scheduler = scheduler
        #: Keep at least this many recent epochs of WAL + state for
        #: manual rollback (§7.2); None = retain everything.
        self._retain_epochs = retain_epochs
        #: Hash-partition count for operator state and epoch tasks
        #: (§6.2).  Checkpoints are shard-count independent, so a query
        #: may restart at a different count (rescaling): restore simply
        #: re-hashes every key.  REPRO_NUM_SHARDS supplies an env-driven
        #: default so CI can exercise the partitioned path everywhere.
        if num_shards is None:
            num_shards = int(os.environ.get("REPRO_NUM_SHARDS", "1"))
        self.num_shards = max(1, num_shards)

        #: Always-on flight recorder (§7.4): ring buffer of recent epoch
        #: progress and engine events, dumped as ``postmortem.json`` on
        #: any crash.  Created first so even an init/recovery failure
        #: leaves a postmortem behind.
        self.flightrec = FlightRecorder(checkpoint_dir, engine="microbatch")
        self.flightrec.adopt_prior_dumps()
        try:
            self._init_engine(plan, sink, output_mode, checkpoint_dir,
                              snapshot_interval, state_backend,
                              state_memtable_bytes)
        except Exception as exc:
            self._dump_crash("init-crash", exc)
            raise

    def _init_engine(self, plan, sink, output_mode, checkpoint_dir,
                     snapshot_interval, state_backend,
                     state_memtable_bytes) -> None:
        """The crash-recorded part of construction: plan compilation, WAL
        attachment and recovery — where injected faults (and real restart
        bugs) can fire before the first epoch ever runs."""
        self.state_store = StateStore(checkpoint_dir, snapshot_interval,
                                      num_shards=self.num_shards,
                                      backend=state_backend,
                                      memtable_bytes=state_memtable_bytes)
        with tracing.trace_span("plan-compile"):
            self.plan = incrementalize(plan, output_mode, self.state_store,
                                       num_shards=self.num_shards)
        self.sink.set_key_names(self.plan.key_names)
        if output_mode not in sink.supported_modes:
            raise ValueError(
                f"sink {type(sink).__name__} does not support output mode "
                f"{output_mode!r} (supports {sink.supported_modes})"
            )

        self.wal = WriteAheadLog(checkpoint_dir)
        existing = self.wal.read_metadata()
        if existing and existing.get("output_mode") not in (None, output_mode):
            raise ValueError(
                f"checkpoint {checkpoint_dir!r} was written by a query in "
                f"{existing['output_mode']!r} mode; restarting it in "
                f"{output_mode!r} mode would corrupt the sink contract "
                "(use a fresh checkpoint directory)"
            )
        self.wal.write_metadata({"output_mode": output_mode})
        self.watermarks = WatermarkTracker(self.plan.watermark_delays)
        self.progress = ProgressReporter()
        self._attach_event_log(checkpoint_dir)

        #: Live sources, created from descriptors ("re-attach" on restart).
        self.sources = {name: desc.create() for name, desc in self.plan.sources}
        self._start_offsets = {
            name: source.initial_offsets() for name, source in self.sources.items()
        }
        self.next_epoch = 0
        #: True when the writer built the scheduler for this engine (via
        #: the ``executor`` option); stop() then owns its shutdown.
        self._owns_scheduler = False
        self._wal_group = SyncGroup() if self.pipelined else None
        self._wal_unsynced = 0
        self._flusher = _AsyncStateFlusher(self) if self.pipelined else None
        self._prefetcher = _SourcePrefetcher(self) if self.pipelined else None
        self._async_error_raised = False
        # Recovery stays fully synchronous even in pipelined mode: it
        # runs once, off the hot path, and the engine must not observe a
        # half-flushed checkpoint of its own making.
        self._recover()
        self.flightrec.note("engine-start", pipelined=self.pipelined,
                            num_shards=self.num_shards,
                            next_epoch=self.next_epoch)
        # A process-backed scheduler forks its workers from this fully
        # recovered engine: compiled plans and restored state are
        # inherited, not rebuilt per worker.
        bind = getattr(self.scheduler, "bind_engine", None)
        if bind is not None:
            bind(self)

    def _attach_event_log(self, checkpoint_dir: str) -> None:
        """Append each epoch's progress as a JSON line to the structured
        event log (§7.4): ``<checkpoint>/events.jsonl``.

        One append handle is held for the engine's lifetime (flushed per
        epoch so readers see completed lines) instead of reopening the
        file every epoch; :meth:`stop` closes it."""
        import json
        import os

        path = os.path.join(checkpoint_dir, "events.jsonl")
        self._event_log = open(path, "a", encoding="utf-8")

        def log_event(progress):
            if self._event_log.closed:
                return
            self._event_log.write(json.dumps(progress.to_json()) + "\n")
            self._event_log.flush()

        self.progress.listeners.append(log_event)

    def stop(self) -> None:
        """Release engine resources (idempotent); called by query.stop.

        In pipelined mode this is the restart barrier: the prefetcher is
        parked, the flusher drains every queued state write, and the WAL
        sync group gets its final directory fsync — after which the
        checkpoint on disk is indistinguishable from a sequential run's.
        A failure captured by a background thread that was never seen at
        an epoch boundary is re-raised here (once), so it still reaches
        ``StreamingQuery.exception``.
        """
        event_log = getattr(self, "_event_log", None)
        if event_log is not None and not event_log.closed:
            event_log.close()
        async_error = None
        if self.pipelined:
            self._prefetcher.stop()
            self._flusher.stop()
            async_error = self._flusher.error or self._prefetcher.error
            if async_error is None:
                self._wal_group.sync()
        if getattr(self, "_owns_scheduler", False) and self.scheduler is not None:
            self.scheduler.shutdown()
        if async_error is not None and not self._async_error_raised:
            self._async_error_raised = True
            self._dump_crash("async-crash", async_error)
            raise async_error

    # ------------------------------------------------------------------
    # Recovery (§6.1 step 4)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        last = self.wal.latest_logged_epoch()
        if last is None:
            return
        committed = self.wal.is_committed(last)
        target = last if committed else last - 1

        restored = self.state_store.restore_all(target) if target >= 0 else None
        replay_from = 0 if restored is None else restored + 1

        # Rebuild state by replaying logged epochs with output disabled
        # ("loading the old state and running those epochs with the same
        # offsets while disabling output").
        for epoch in range(replay_from, target + 1):
            self._run_logged_epoch(epoch, output_enabled=False)
        if replay_from <= target:
            self.state_store.commit_all(target)

        if not committed:
            # At most one epoch may be partially written; re-run it and
            # let the idempotent sink deduplicate.
            self._run_logged_epoch(last, output_enabled=True)
            self.wal.write_commit(last, {"watermarks": self.watermarks.to_json()})
            self.state_store.commit_all(last)
        elif replay_from > target:
            # No replay happened; the post-epoch watermark state was
            # recorded in the commit entry.
            commit = self.wal.read_commit(last)
            self.watermarks.load_json(commit.get("watermarks", {}))

        entry = self.wal.read_offsets(last)
        for name, rng in entry["sources"].items():
            self._start_offsets[name] = rng["end"]
        self.next_epoch = last + 1

    def _run_logged_epoch(self, epoch: int, output_enabled: bool) -> None:
        """Re-execute an epoch exactly as logged in the WAL."""
        entry = self.wal.read_offsets(epoch)
        self.watermarks.load_json(entry.get("watermarks", {}))
        inputs = {
            name: self.sources[name].get_batch(rng["start"], rng["end"])
            for name, rng in entry["sources"].items()
        }
        ctx = EpochContext(
            epoch_id=epoch,
            inputs=inputs,
            watermarks=self.watermarks,
            processing_time=entry.get("trigger_time", self.clock()),
            output_mode=self.output_mode,
            output_enabled=output_enabled,
            is_first_epoch=epoch == 0,
            scheduler=self.scheduler,
        )
        result = self.plan.root.process(ctx)
        if output_enabled:
            note_ingest = getattr(self.sink, "note_epoch_ingest", None)
            if note_ingest is not None:
                starts = {n: rng["start"] for n, rng in entry["sources"].items()}
                ends = {n: rng["end"] for n, rng in entry["sources"].items()}
                floor = self._epoch_ingest_floor(ends, starts=starts)
                note_ingest(epoch, floor if floor is not None
                            else entry.get("trigger_time", self.clock()))
            self.sink.add_batch(epoch, result, self.output_mode)
        self.watermarks.advance()

    # ------------------------------------------------------------------
    # Normal epoch execution
    # ------------------------------------------------------------------
    def _available_end_offsets(self, starts: dict = None) -> dict:
        """End offsets for the next epoch; ``starts`` overrides the
        engine's own start offsets (used by the prefetcher, which plans
        epoch N+1 while the engine is still mutating epoch N's)."""
        base = self._start_offsets if starts is None else starts
        ends = {}
        for name, source in self.sources.items():
            latest = source.latest_offsets()
            start = base[name]
            if self._max_records is not None:
                capped = {}
                budget = self._max_records
                for partition in sorted(latest):
                    lo = start.get(partition, 0)
                    hi = latest[partition]
                    take = min(hi - lo, budget)
                    capped[partition] = lo + max(take, 0)
                    budget -= max(take, 0)
                ends[name] = capped
            else:
                ends[name] = latest
        return ends

    def _epoch_ingest_floor(self, ends: dict, starts: dict = None):
        """Oldest source-ingest timestamp across this epoch's input
        ranges, or None when no source tracks ingest (the protocol is
        optional: sources expose ``ingest_floor(start, end)``)."""
        base = self._start_offsets if starts is None else starts
        floor = None
        for name, source in self.sources.items():
            probe = getattr(source, "ingest_floor", None)
            if probe is None:
                continue
            ts = probe(base[name], ends[name])
            if ts is not None and (floor is None or ts < floor):
                floor = ts
        return floor

    def _has_new_data(self, ends: dict, starts: dict = None) -> bool:
        base = self._start_offsets if starts is None else starts
        for name, end in ends.items():
            start = base[name]
            if any(end[p] > start.get(p, 0) for p in end):
                return True
        return False

    def _has_pending_timeouts(self) -> bool:
        now = self.clock()
        return any(op.has_pending_timeout(now) for op in self.plan.stateful_ops)

    def _raise_async_error(self) -> None:
        """Re-raise the first background-thread failure on the engine
        thread, from where it reaches ``StreamingQuery.exception``."""
        for worker in (self._flusher, self._prefetcher):
            if worker is not None and worker.error is not None:
                self._async_error_raised = True
                raise worker.error

    def _dump_crash(self, reason: str, error) -> None:
        """Leave a postmortem behind for a failure; never raises."""
        rec = getattr(self, "flightrec", None)
        if rec is not None:
            rec.dump(reason, error=error,
                     epoch=getattr(self, "next_epoch", None))

    def run_epoch(self):
        """Run one epoch if there is work; returns EpochProgress or None.

        "Work" is new input data or an expired processing-time timeout in
        a stateful operator.  Any failure — the epoch's own, or a
        pipelined background thread's surfacing at this boundary — dumps
        the flight recorder as ``postmortem.json`` before propagating.
        """
        try:
            progress = self._run_epoch()
        except Exception as exc:
            self._dump_crash("epoch-crash", exc)
            raise
        if progress is not None:
            self.flightrec.record_epoch(progress)
        return progress

    def _run_epoch(self):
        if not self.pipelined:
            ends = self._available_end_offsets()
            if not self._has_new_data(ends) and not self._has_pending_timeouts():
                return None

            epoch = self.next_epoch
            with tracing.trace_span("epoch", epoch=epoch):
                progress = self._execute_epoch(epoch, ends)
            self.progress.record(progress)
            return progress

        # Pipelined path: background failures surface here, at the epoch
        # boundary — the harness treats that like a crash at this point.
        self._raise_async_error()
        waited = time.perf_counter()
        claimed = self._prefetcher.claim(self._start_offsets)
        prefetch_wait = time.perf_counter() - waited
        self._raise_async_error()
        if claimed is not None:
            ends, prefetched = claimed
        else:
            ends, prefetched = self._available_end_offsets(), None
        if not self._has_new_data(ends) and not self._has_pending_timeouts():
            # Idle drain: queued state writes complete and the WAL tail
            # (the previous epoch's commit entry) becomes durable now
            # instead of riding the next epoch's group sync, so
            # process_all_available() leaves a fully materialized
            # checkpoint — identical to the sequential engine's.
            self._flusher.drain()
            self._raise_async_error()
            self._wal_group.sync()
            return None

        epoch = self.next_epoch
        with tracing.trace_span("epoch", epoch=epoch):
            progress = self._execute_epoch(epoch, ends, prefetched=prefetched,
                                           prefetch_wait=prefetch_wait)
        self.progress.record(progress)
        return progress

    def _execute_epoch(self, epoch: int, ends: dict, prefetched: dict = None,
                       prefetch_wait: float = 0.0) -> EpochProgress:
        """One epoch's Figure-4 protocol, with per-phase instrumentation."""
        trigger_time = self.clock()
        started = time.perf_counter()
        # Stage timings (and per-operator metrics) are only collected
        # while observability is enabled; None keeps every _Phase to a
        # single branch and omits the sections from events.jsonl.
        timings = {} if observability.active() else None
        fault_point("epoch.begin", epoch=epoch)

        # (1) Durably log the epoch's offsets before touching any data.
        # Pipelined, the entry is *visible* immediately but its fsync is
        # deferred to the pre-sink group sync below — rename order (and
        # with it every Figure-4 invariant) is unchanged.
        with _Phase("wal-offsets", timings):
            self.wal.write_offsets(epoch, {
                "sources": {
                    name: {"start": self._start_offsets[name], "end": ends[name]}
                    for name in self.sources
                },
                "watermarks": self.watermarks.to_json(),
                "trigger_time": trigger_time,
            }, group=self._wal_group)

        fault_point("epoch.after_offsets", epoch=epoch)

        # (2) Read the epoch's new data and run the incremental plan.
        with _Phase("read-inputs", timings):
            if prefetched is not None:
                inputs = prefetched
                metrics.count("pipeline.prefetch_hits")
            else:
                inputs = self._fetch_inputs(ends)
                if self.pipelined:
                    metrics.count("pipeline.prefetch_misses")
        if self.pipelined:
            # Kick off epoch N+1's read while this epoch computes.
            self._prefetcher.request(ends)
        input_rows = sum(batch.num_rows for batch in inputs.values())
        ctx = EpochContext(
            epoch_id=epoch,
            inputs=inputs,
            watermarks=self.watermarks,
            processing_time=trigger_time,
            output_mode=self.output_mode,
            output_enabled=True,
            is_first_epoch=epoch == 0,
            scheduler=self.scheduler,
        )
        with _Phase("process", timings):
            result = self.plan.root.process(ctx)
        fault_point("epoch.after_process", epoch=epoch)

        # Group-commit barrier: every WAL_SYNC_EVERY epochs, everything
        # renamed since the last sync — offsets and commit entries of
        # the adjacent epochs, lagging sink files — becomes durable
        # through one fsync per touched directory.
        if self.pipelined:
            self._wal_unsynced += 1
            if self._wal_unsynced >= self.WAL_SYNC_EVERY:
                with _Phase("group-sync", timings):
                    self._wal_group.sync()
                self._wal_unsynced = 0

        # End-to-end event-time lag (§7.4): the oldest source-ingest
        # timestamp this epoch consumed.  Announced to cascade-aware
        # sinks *before* delivery so a downstream StreamTable can
        # propagate the original (bronze) ingest time; trigger time is
        # the fallback floor when no source tracks ingest.
        note_ingest = getattr(self.sink, "note_epoch_ingest", None)
        ingest_floor = None
        if timings is not None or note_ingest is not None:
            ingest_floor = self._epoch_ingest_floor(ends)
        if note_ingest is not None:
            note_ingest(epoch, ingest_floor if ingest_floor is not None
                        else trigger_time)

        # (3) Idempotent sink write, then (4) commit + state checkpoint.
        with _Phase("sink-write", timings):
            if self.pipelined:
                with deferred_fsync(self._wal_group):
                    self.sink.add_batch(epoch, result, self.output_mode)
            else:
                self.sink.add_batch(epoch, result, self.output_mode)
        fault_point("epoch.after_sink", epoch=epoch)
        self.watermarks.advance()
        with _Phase("wal-commit", timings):
            self.wal.write_commit(
                epoch, {"watermarks": self.watermarks.to_json()},
                group=self._wal_group)
        fault_point("epoch.after_commit", epoch=epoch)
        if epoch % self._state_checkpoint_interval == 0:
            with _Phase("state-commit", timings):
                if self.pipelined:
                    # Capture the checkpoint synchronously (cheap), hand
                    # the file writes to the background flusher.
                    jobs = self.state_store.prepare_commit_all(
                        epoch, self._flusher.group)
                    self._flusher.submit(epoch, jobs)
                else:
                    self.state_store.commit_all(epoch)
        if self.pipelined and self._retain_epochs is not None:
            # Retention scans the on-disk state directory; wait for
            # queued writes so the horizon computation is deterministic.
            with _Phase("flusher-wait", timings):
                self._flusher.drain()
            self._raise_async_error()
        self._enforce_retention(epoch)

        for name, source in self.sources.items():
            source.commit(ends[name])
            self._start_offsets[name] = ends[name]
        self.next_epoch = epoch + 1

        backlog = 0
        for name, source in self.sources.items():
            latest = source.latest_offsets()
            backlog += sum(
                max(latest[p] - ends[name].get(p, 0), 0) for p in latest
            )
        duration = time.perf_counter() - started
        if timings is not None and self.pipelined:
            # Pipeline occupancy: time this epoch spent waiting on the
            # prefetcher (ideally ~0 — the read fully overlapped).
            timings["prefetch-wait"] = prefetch_wait
        state_keys = self.state_store.total_keys()
        event_lag = None
        if timings is not None and ingest_floor is not None:
            event_lag = max(0.0, self.clock() - ingest_floor)
        output_net = None
        if WEIGHT_COLUMN in result.columns:
            output_net = int(result.columns[WEIGHT_COLUMN].sum())
        progress = EpochProgress(
            epoch_id=epoch,
            trigger_time=trigger_time,
            duration_seconds=duration,
            input_rows=input_rows,
            output_rows=result.num_rows,
            backlog_rows=backlog,
            state_keys=state_keys,
            late_rows_dropped=ctx.metrics["late_rows_dropped"],
            watermarks={
                c: self.watermarks.current(c)
                for c in self.watermarks.columns
            },
            sources={
                name: {"start": self._start_offsets[name], "end": ends[name]}
                for name in self.sources
            },
            task_metrics=(
                self.scheduler.last_stage_report or {}
                if self.scheduler is not None else {}
            ),
            stage_timings=timings or {},
            operator_metrics=ctx.op_metrics,
            output_rows_net=output_net,
            event_time_lag_seconds=event_lag,
            bottleneck=(bottleneck_model.summary(timings, ctx.op_metrics)
                        if timings else {}),
        )
        metrics.count("engine.epochs")
        metrics.count("engine.rows_in", input_rows)
        metrics.count("engine.rows_out", result.num_rows)
        metrics.count("engine.late_rows_dropped",
                      ctx.metrics["late_rows_dropped"])
        metrics.set_gauge("engine.backlog_rows", backlog)
        metrics.set_gauge("engine.state_keys", state_keys)
        metrics.observe("engine.epoch_seconds", duration)
        if event_lag is not None:
            metrics.set_gauge("engine.event_time_lag", event_lag)
            metrics.observe("engine.event_time_lag_seconds", event_lag)
        if timings is not None:
            for column in self.watermarks.columns:
                wm = self.watermarks.current(column)
                if wm is not None:
                    metrics.set_gauge(f"engine.watermark_lag.{column}",
                                      max(0.0, trigger_time - wm))
        return progress

    def _fetch_inputs(self, ends: dict) -> dict:
        """Read each source's new range, optionally as scheduler tasks.

        With a scheduler, one task per (source, partition) reads and
        decodes its range — tasks are idempotent (sources are replayable)
        so failed or speculated attempts are safe, giving the ingestion
        stage the §6.2 recovery properties.
        """
        if self.scheduler is None:
            return {
                name: source.get_batch(self._start_offsets[name], ends[name])
                for name, source in self.sources.items()
            }
        from repro.cluster.scheduler import Task
        from repro.sql.batch import RecordBatch

        tasks = []
        for name, source in self.sources.items():
            start = self._start_offsets[name]
            for partition in sorted(ends[name]):
                lo = start.get(partition, 0)
                hi = ends[name][partition]
                if hi > lo:
                    tasks.append(Task(
                        (name, partition),
                        source.get_partition_batch, (partition, lo, hi),
                    ))
        results = self.scheduler.run_stage(tasks)
        inputs = {}
        for name, source in self.sources.items():
            parts = [
                results[key] for key in sorted(results)
                if key[0] == name
            ]
            inputs[name] = RecordBatch.concat(parts, source.schema)
        return inputs

    def _enforce_retention(self, epoch: int) -> None:
        """GC state checkpoints and WAL entries beyond the rollback
        horizon.  Kept conservative: WAL entries are only purged below
        the oldest version the state store can still restore, so
        recovery and rollback to any retained epoch keep working."""
        if self._retain_epochs is None:
            return
        horizon = epoch - self._retain_epochs
        if horizon <= 0:
            return
        self.state_store.prune_all(horizon)
        oldest = self.state_store.oldest_restorable_version()
        if oldest is not None:
            self.wal.purge_before(min(horizon, oldest) + 1)
        elif not self.plan.stateful_ops:
            # Stateless queries need no state to replay: WAL retention
            # is bounded by the horizon alone.
            self.wal.purge_before(horizon + 1)

    def run_available(self):
        """Run epochs until the input is drained; returns progress list."""
        results = []
        while True:
            progress = self.run_epoch()
            if progress is None:
                return results
            results.append(progress)

    def result_batch_schema(self):
        """Schema of the query's output rows."""
        return self.plan.root.output_schema

    def empty_result(self) -> RecordBatch:
        """An empty output batch (schema carrier)."""
        return RecordBatch.empty(self.plan.root.output_schema)
