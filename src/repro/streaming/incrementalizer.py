"""Incrementalization: static logical plan -> incremental operator tree.

This is the paper's core idea (§1, §5.2): the user writes an ordinary
relational query; this module — not the user — decides where state lives,
which operators emit deltas vs updates, and how watermarks bound state.
Planning proceeds exactly as §5 describes: analysis (resolution + §5.1
support checks), incrementalization (this module) and optimization
(:mod:`repro.sql.optimizer`, run before operator construction so
predicate pushdown etc. apply to streaming automatically, §5.3).
"""

from __future__ import annotations

from repro.sql import logical as L
from repro.sql.analysis import (
    analyze,
    check_streaming_supported,
    plan_is_weighted,
    watermarked_columns,
)
from repro.sql.expressions import AnalysisError
from repro.sql.optimizer import optimize
from repro.streaming import operators as ops
from repro.streaming.zset import thread_weights


class IncrementalPlan:
    """The result of incrementalization, ready for an execution engine."""

    def __init__(self, root: ops.IncrementalOp, sources: list, watermark_delays: dict,
                 stateful_ops: list, key_names: list, output_mode: str,
                 num_shards: int = 1):
        #: Root incremental operator; its per-epoch output feeds the sink.
        self.root = root
        #: [(source_name, SourceDescriptor)] in plan order.
        self.sources = sources
        #: column -> lateness delay (seconds) for every watermark.
        self.watermark_delays = watermark_delays
        #: Stateful operators (for timeout polling and metrics).
        self.stateful_ops = stateful_ops
        #: Output columns identifying a row, for update-mode sinks.
        self.key_names = key_names
        self.output_mode = output_mode
        #: Shard count every stateful operator partitions by (§6.2).
        self.num_shards = num_shards


class _Builder:
    """Stateful tree walk assigning stable ids to sources and operators.

    Ids are deterministic in plan order, so a restarted query (same code,
    same query shape) reattaches to the same WAL source entries and state
    store directories — the basis for code updates that keep state (§7.1).
    """

    def __init__(self, state_store, output_mode: str, num_shards: int = 1):
        self._state_store = state_store
        self._output_mode = output_mode
        #: Shard count assigned to each stateful operator; the operators
        #: hash-partition their input deltas by key into this many
        #: independent tasks per epoch (§6.2).
        self.num_shards = max(1, num_shards)
        self.sources = []
        self.stateful_ops = []
        self._op_counter = 0

    def _next_op_id(self, kind: str) -> str:
        op_id = f"{kind}-{self._op_counter}"
        self._op_counter += 1
        return op_id

    def _handle(self, kind: str):
        return self._state_store.handle(self._next_op_id(kind))

    # ------------------------------------------------------------------
    def build(self, plan: L.LogicalPlan) -> ops.IncrementalOp:
        if not plan.is_streaming:
            return ops.StaticOp(plan)
        if isinstance(plan, L.Scan):
            name = f"source-{len(self.sources)}"
            self.sources.append((name, plan.provider))
            return ops.StreamScanOp(name, plan.schema)
        if isinstance(plan, (L.Project, L.Filter)):
            # Collapse the maximal adjacent Project/Filter chain into ONE
            # StatelessOp, which compiles it as a fused pipeline (§5.3) —
            # one operator boundary per stateless segment, not per node.
            bottom = plan
            while isinstance(bottom.child, (L.Project, L.Filter)) \
                    and bottom.child.is_streaming:
                bottom = bottom.child
            return ops.StatelessOp(plan, self.build(bottom.child),
                                   num_shards=self.num_shards)
        if isinstance(plan, L.WithWatermark):
            return ops.WatermarkTrackOp(plan.column, self.build(plan.child))
        if isinstance(plan, L.Aggregate):
            return self._build_aggregate(plan)
        if isinstance(plan, L.Join):
            return self._build_join(plan)
        if isinstance(plan, L.Deduplicate):
            return self._build_dedup(plan)
        if isinstance(plan, L.MapGroupsWithState):
            op = ops.MapGroupsWithStateOp(
                plan, self.build(plan.child), self._handle("mgws"),
                watermark_column=_single_watermark_column(plan.child),
                num_shards=self.num_shards,
            )
            self.stateful_ops.append(op)
            return op
        if isinstance(plan, L.Union):
            left = self.build(plan.left)
            right = self.build(plan.right)
            return ops.UnionOp(
                left, right,
                left_static=not plan.left.is_streaming,
                right_static=not plan.right.is_streaming,
                schema=plan.schema,
            )
        if isinstance(plan, (L.Sort, L.Limit)):
            # Valid only in complete mode (enforced by analysis, §5.1):
            # each epoch's emission is the whole result table, so these
            # apply as ordinary batch operators on it.
            return ops.CompleteModePostOp(plan, self.build(plan.child))
        raise AnalysisError(
            f"cannot incrementalize {type(plan).__name__} (§5.2)"
        )

    # ------------------------------------------------------------------
    def _build_aggregate(self, plan: L.Aggregate) -> ops.IncrementalOp:
        marks = watermarked_columns(plan.child)
        watermark_column = None
        if plan.window is not None:
            referenced = plan.window.time_expr.references() & set(marks)
            watermark_column = next(iter(referenced), None)
        else:
            for g in plan.plain_grouping:
                match = g.references() & set(marks)
                if match and g.references() == match:
                    watermark_column = next(iter(match))
                    break
        op = ops.StatefulAggregateOp(
            plan, self.build(plan.child), self._handle("agg"),
            watermark_column=watermark_column,
            num_shards=self.num_shards,
            output_mode=self._output_mode,
        )
        self.stateful_ops.append(op)
        return op

    def _build_dedup(self, plan: L.Deduplicate) -> ops.IncrementalOp:
        marks = watermarked_columns(plan.child)
        in_subset = [c for c in plan.subset if c in marks]
        op = ops.StreamingDedupOp(
            plan, self.build(plan.child), self._handle("dedup"),
            watermark_column=in_subset[0] if in_subset else None,
            num_shards=self.num_shards,
        )
        self.stateful_ops.append(op)
        return op

    def _build_join(self, plan: L.Join) -> ops.IncrementalOp:
        left_streaming = plan.left.is_streaming
        right_streaming = plan.right.is_streaming
        if left_streaming and right_streaming:
            op = ops.StreamStreamJoinOp(
                plan,
                self.build(plan.left),
                self.build(plan.right),
                self._handle("join-left"),
                self._handle("join-right"),
                num_shards=self.num_shards,
            )
            self.stateful_ops.append(op)
            return op
        if left_streaming:
            return ops.StreamStaticJoinOp(
                plan, self.build(plan.left), ops.StaticOp(plan.right),
                stream_is_left=True, num_shards=self.num_shards,
            )
        return ops.StreamStaticJoinOp(
            plan, self.build(plan.right), ops.StaticOp(plan.left),
            stream_is_left=False, num_shards=self.num_shards,
        )


def _single_watermark_column(plan: L.LogicalPlan):
    """The (first) watermarked column of a subplan, or None."""
    marks = watermarked_columns(plan)
    return sorted(marks)[0] if marks else None


def _result_key_names(plan: L.LogicalPlan) -> list:
    """Output columns identifying a result row, for update-mode sinks.

    Aggregates are keyed by their grouping columns, stateful operators by
    their key columns; map-like queries have no natural key.
    """
    if isinstance(plan, (L.Sort, L.Limit, L.Filter)):
        return _result_key_names(plan.child)
    if isinstance(plan, L.Aggregate):
        return plan.key_names
    if isinstance(plan, L.MapGroupsWithState):
        return plan.key_columns
    if isinstance(plan, L.Project):
        inner = _result_key_names(plan.child)
        available = [e.output_name for e in plan.exprs]
        return [k for k in inner if k in available]
    return []


def incrementalize(plan: L.LogicalPlan, output_mode: str, state_store,
                   run_optimizer: bool = True,
                   num_shards: int = 1) -> IncrementalPlan:
    """Plan a streaming query: analyze, check, optimize, build operators.

    ``state_store`` supplies the keyed state handles for stateful
    operators; the engine commits/restores it around epochs.
    ``num_shards`` is the partition count every stateful operator splits
    its epoch work into (it should match the state store's shard count);
    1 keeps the single-task path.
    """
    analyze(plan)
    check_streaming_supported(plan, output_mode)
    if run_optimizer:
        plan = optimize(plan)
        analyze(plan)
    if plan_is_weighted(plan):
        plan = thread_weights(plan)
        analyze(plan)
    builder = _Builder(state_store, output_mode, num_shards)
    root = builder.build(plan)
    return IncrementalPlan(
        root=root,
        sources=builder.sources,
        watermark_delays=dict(watermarked_columns(plan)),
        stateful_ops=builder.stateful_ops,
        key_names=_result_key_names(plan),
        output_mode=output_mode,
        num_shards=builder.num_shards,
    )
