"""Structured Streaming: the paper's primary contribution.

The public surface is reached through the DataFrame API
(``df.write_stream`` returns a :class:`~repro.streaming.writer.
DataStreamWriter`; ``start()`` returns a :class:`~repro.streaming.query.
StreamingQuery`), but the pieces are importable directly:

* :mod:`repro.streaming.incrementalizer` — static plan -> incremental
  operator tree (§5.2);
* :mod:`repro.streaming.operators` / :mod:`repro.streaming.stateful` —
  stateful aggregation, joins, dedup, ``map_groups_with_state`` (§4.3);
* :mod:`repro.streaming.microbatch` / :mod:`repro.streaming.continuous`
  — the two execution modes (§6.2, §6.3);
* :mod:`repro.streaming.wal` / :mod:`repro.streaming.state` — the
  write-ahead log and versioned state store behind exactly-once
  recovery, rollback and code updates (§6.1, §7).
"""

from repro.streaming.manager import StreamingQueryManager
from repro.streaming.query import StreamingQuery
from repro.streaming.sessions import session_windows
from repro.streaming.triggers import (
    AvailableNowTrigger,
    ContinuousTrigger,
    ManualTrigger,
    OnceTrigger,
    ProcessingTimeTrigger,
)
from repro.streaming.writer import DataStreamWriter

__all__ = [
    "AvailableNowTrigger",
    "ContinuousTrigger",
    "DataStreamWriter",
    "ManualTrigger",
    "OnceTrigger",
    "ProcessingTimeTrigger",
    "StreamingQuery",
    "StreamingQueryManager",
    "session_windows",
]
