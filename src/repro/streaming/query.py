"""StreamingQuery: the user's handle on a running query.

Wraps an engine (microbatch or continuous) plus the trigger-driven
driver thread.  Mirrors Spark's handle: ``stop``, ``await_termination``,
``process_all_available``, ``last_progress``/``recent_progress``,
``exception``.  Queries can also be driven synchronously (no thread)
with :meth:`run_epoch` / :meth:`process_all_available`, which is how
most tests and the run-once trigger use the engine (§7.3).
"""

from __future__ import annotations

import threading
import time

from repro.observability import metrics, tracing
from repro.streaming.triggers import (
    AvailableNowTrigger,
    OnceTrigger,
    ProcessingTimeTrigger,
)


class StreamingQuery:
    """A started streaming query."""

    def __init__(self, engine, trigger, name: str = None, use_thread: bool = True):
        self.engine = engine
        self.trigger = trigger
        self.name = name
        self._stop_event = threading.Event()
        self._terminated = threading.Event()
        self._exception = None
        self._thread = None
        self._listeners = []
        #: Exceptions swallowed while notifying listeners (§7.4: a bad
        #: listener must not take the query down, but must be visible).
        self.listener_errors = 0
        #: Back-reference set by StreamingQueryManager.register so
        #: lifecycle events reach manager-level listeners.
        self._manager = None
        #: Servers started via :meth:`serve_metrics`; closed by stop().
        self._metric_servers = []
        if use_thread:
            self._thread = threading.Thread(
                target=self._run_loop, name=f"query-{name or id(self)}", daemon=True
            )
            self._thread.start()
        else:
            self._terminated.set()

    # ------------------------------------------------------------------
    # Driver loop
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            if isinstance(self.trigger, OnceTrigger):
                self.engine.run_epoch()
            elif isinstance(self.trigger, AvailableNowTrigger):
                self.engine.run_available()
            else:
                interval = getattr(self.trigger, "interval", 0.0)
                while not self._stop_event.is_set():
                    started = time.monotonic()
                    self.engine.run_epoch()
                    # Sleep out the remainder of the trigger interval;
                    # a long epoch just triggers again immediately
                    # (adaptive batching under backlog, §7.3).
                    remaining = interval - (time.monotonic() - started)
                    if remaining > 0:
                        self._stop_event.wait(remaining)
                    elif interval == 0:
                        self._stop_event.wait(0.001)
        except Exception as exc:  # surfaced via .exception, like Spark
            self._exception = exc
        finally:
            self._terminated.set()
            self._fire_terminated()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """True while the query can still make progress: a running driver
        loop, or a manual/synchronous query that has not been stopped."""
        if self._thread is None:
            return not self._stop_event.is_set()
        return not self._terminated.is_set()

    @property
    def exception(self):
        """The exception that terminated the query, if any."""
        return self._exception

    def stop(self) -> None:
        """Ask the driver loop to stop and wait for it."""
        already_stopped = self._stop_event.is_set()
        self._stop_event.set()
        for server in self._metric_servers:
            server.close()
        self._metric_servers = []
        stop_engine = getattr(self.engine, "stop", None)
        if stop_engine is not None:
            stop_engine()
        if self._thread is not None:
            self._thread.join(timeout=30)
        elif not already_stopped:
            self._fire_terminated()

    def await_termination(self, timeout: float = None) -> bool:
        """Block until the query stops (True) or the timeout passes."""
        finished = self._terminated.wait(timeout)
        if self._exception is not None:
            raise self._exception
        return finished

    # ------------------------------------------------------------------
    # Synchronous driving (tests, run-once patterns)
    # ------------------------------------------------------------------
    def run_epoch(self):
        """Synchronously run one epoch (only for thread-less queries)."""
        if self._thread is not None:
            raise RuntimeError("query is driven by its own thread")
        return self.engine.run_epoch()

    def process_all_available(self):
        """Process until the input is drained.

        With a driver thread this polls until the backlog is empty; for
        synchronous queries it drives the engine directly.
        """
        if self._thread is None:
            return self.engine.run_available()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if self._exception is not None:
                raise self._exception
            if self._drained():
                return None
            time.sleep(0.01)
        raise TimeoutError("input not drained within 60s")

    def _drained(self) -> bool:
        engine = self.engine
        for name, source in engine.sources.items():
            latest = source.latest_offsets()
            start = engine._start_offsets[name]
            if any(latest[p] > start.get(p, 0) for p in latest):
                return False
        return True

    def add_listener(self, listener) -> None:
        """Attach a listener with optional ``on_progress(progress)`` /
        ``on_query_progress(progress)`` and ``on_terminated(query,
        exception)`` / ``on_query_terminated(query, exception)``
        callbacks (§7.4 monitoring).  Registering the same listener
        twice is a no-op — it will not receive duplicate events.
        """
        if any(existing is listener for existing in self._listeners):
            return
        self._listeners.append(listener)
        on_progress = (getattr(listener, "on_progress", None)
                       or getattr(listener, "on_query_progress", None))
        if on_progress is not None:
            self.engine.progress.listeners.append(on_progress)

    def remove_listener(self, listener) -> None:
        """Detach a listener registered with :meth:`add_listener`."""
        self._listeners = [l for l in self._listeners if l is not listener]
        on_progress = (getattr(listener, "on_progress", None)
                       or getattr(listener, "on_query_progress", None))
        if on_progress is not None:
            reporter = self.engine.progress
            reporter.listeners = [
                cb for cb in reporter.listeners if cb != on_progress
            ]

    def _fire_terminated(self) -> None:
        for listener in self._listeners:
            on_terminated = (getattr(listener, "on_terminated", None)
                             or getattr(listener, "on_query_terminated", None))
            if on_terminated is not None:
                try:
                    on_terminated(self, self._exception)
                except Exception:
                    # Listener failures must not mask the query's fate,
                    # but they must not vanish either (satellite fix:
                    # this path used to swallow silently while the
                    # progress path crashed the epoch).
                    self.listener_errors += 1
                    metrics.count("query.listener_errors")
        if self._manager is not None:
            self._manager._notify_terminated(self)

    def dump_postmortem(self, reason: str = "manual"):
        """Force a flight-recorder dump (§7.4): write the ring buffer of
        recent epochs, events and metric deltas as ``postmortem.json``
        in the checkpoint directory.  Returns the path written, or None
        when this engine has no recorder or the dump failed.
        """
        rec = getattr(self.engine, "flightrec", None)
        if rec is None:
            return None
        return rec.dump(reason, error=self._exception,
                        epoch=getattr(self.engine, "next_epoch", None),
                        force=True)

    def bottleneck(self, window: int = 20) -> dict:
        """Where is the time going?  Attribute recent epochs' wall time
        to its dominant cost — source read, a plan stage, state commit,
        WAL sync, sink, or flusher backpressure.  Returns ``{}`` unless
        observability was active (stage timings are needed).  See
        :mod:`repro.observability.bottleneck` for the cost model.
        """
        from repro.observability import bottleneck as bottleneck_model
        recent = self.engine.progress.recent[-window:] if window else \
            self.engine.progress.recent
        return bottleneck_model.attribute_many(
            (p.stage_timings, p.operator_metrics) for p in recent)

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1"):
        """Expose the process metrics registry as an OpenMetrics (i.e.
        Prometheus-scrapeable) HTTP endpoint.  Returns the server; its
        ``.url`` is the scrape target, ``port=0`` picks a free port.
        Stopped automatically with the query, or via ``.close()``.
        """
        from repro.observability.serve import MetricsServer
        server = MetricsServer(port=port, host=host)
        self._metric_servers.append(server)
        return server

    def dump_trace(self, path: str, fmt: str = None) -> int:
        """Export the process trace buffer (spans from this query's
        epochs included) to ``path``; returns the span count written.

        ``fmt``: ``"chrome"`` (loads in ``chrome://tracing`` / Perfetto)
        or ``"jsonl"``; inferred from the extension when omitted.
        Returns 0 when tracing is disabled.
        """
        return tracing.dump(path, fmt)

    def metrics_snapshot(self) -> dict:
        """Snapshot of the process metrics registry ({} when disabled)."""
        return metrics.snapshot()

    def explain(self) -> str:
        """Print and return the incremental operator tree the planner
        derived from the declarative query (§5.2)."""
        text = self.engine.plan.root.explain_string()
        print(text)
        return text

    # ------------------------------------------------------------------
    # Monitoring (§7.4)
    # ------------------------------------------------------------------
    @property
    def last_progress(self):
        """Most recent :class:`~repro.streaming.progress.EpochProgress`."""
        return self.engine.progress.last

    @property
    def recent_progress(self) -> list:
        """Retained progress history."""
        return self.engine.progress.recent

    @property
    def status(self) -> dict:
        """Coarse status summary."""
        return {
            "active": self.is_active,
            "next_epoch": getattr(self.engine, "next_epoch", None),
            "state_keys": self.engine.state_store.total_keys()
            if getattr(self.engine, "state_store", None) else 0,
        }
