"""Triggers: when the engine computes a new increment (§4, §7.3).

* :class:`ProcessingTimeTrigger` — fire every ``interval`` seconds (the
  microbatch default);
* :class:`OnceTrigger` — run exactly one epoch over available data, then
  stop: the "run-once" trigger behind the paper's discontinuous-
  processing cost savings (§7.3);
* :class:`AvailableNowTrigger` — run epochs until the input is drained,
  then stop (batch backfill with streaming semantics);
* :class:`ContinuousTrigger` — use the continuous processing engine
  (§6.3) with the given epoch-coordination interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.expressions import parse_duration


@dataclass(frozen=True)
class ProcessingTimeTrigger:
    """Fire an epoch every ``interval`` seconds (0 = as fast as possible)."""

    interval: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "interval", parse_duration(self.interval))


@dataclass(frozen=True)
class ManualTrigger:
    """No automatic firing: the caller drives epochs synchronously via
    ``StreamingQuery.run_epoch`` / ``process_all_available``.  The writer
    default — convenient for tests and deterministic pipelines."""


@dataclass(frozen=True)
class OnceTrigger:
    """Run a single epoch over all currently available data, then stop."""


@dataclass(frozen=True)
class AvailableNowTrigger:
    """Run epochs until no new data is available, then stop."""

    max_records_per_epoch: int = None


@dataclass(frozen=True)
class ContinuousTrigger:
    """Continuous processing (§6.3) with this epoch interval (seconds)."""

    epoch_interval: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "epoch_interval", parse_duration(self.epoch_interval))
