"""Z-set (weighted delta) support for retraction streams.

The paper's incrementalization (§4.2, Figure 3) assumes append-only
inputs; generalizing each epoch's delta to a *Z-set* — a multiset whose
rows carry a signed multiplicity — lets updates and deletes flow through
the same operator tree (DBSP's formulation).  A weighted stream's
batches carry a reserved ``__weight__`` column with values ``+1``
(insert) and ``-1`` (retraction); an update is a ``-1`` old-row /
``+1`` new-row pair.

Conventions kept throughout the engine:

* weights stay in ``{-1, +1}`` — operators emit one output row per unit
  of multiplicity rather than collapsing equal rows into one weighted
  row, so sink deliveries stay human-readable changelogs;
* applying a Z-set to a table means adding ``+1`` rows and removing one
  occurrence per ``-1`` row; the net table never depends on delivery
  order within an epoch;
* a plan is *weighted* iff one of its streaming scans carries the
  weight column; the incrementalizer threads the column through
  projections automatically (:func:`thread_weights` in
  :mod:`repro.streaming.incrementalizer`).
"""

from __future__ import annotations

import numpy as np

from repro.sql import types as T
from repro.sql.batch import RecordBatch
from repro.sql.types import WEIGHT_COLUMN, StructType, hashable_value

__all__ = [
    "WEIGHT_COLUMN", "is_weighted", "weighted_schema", "data_schema",
    "weights_of", "attach_weights", "strip_weights", "split_by_sign",
    "apply_zset", "thread_weights", "hashable_value",
]


def thread_weights(plan):
    """Re-thread ``__weight__`` through a logical plan's projections.

    User queries over a CDC stream are written against the data columns;
    a ``select(...)`` (or an optimizer-inserted pruning projection) would
    silently drop the multiplicity.  This bottom-up rewrite appends a
    weight passthrough to every projection whose input still carries the
    column, so retractions survive the whole stateless pipeline without
    the user (or the optimizer) having to know about them.
    """
    from repro.sql import expressions as E
    from repro.sql import logical as L

    children = tuple(thread_weights(c) for c in plan.children)
    if any(n is not o for n, o in zip(children, plan.children)):
        plan = plan.with_children(children)
    if isinstance(plan, L.Project) and WEIGHT_COLUMN in plan.child.schema:
        if not any(e.output_name == WEIGHT_COLUMN for e in plan.exprs):
            plan = L.Project(
                list(plan.exprs) + [E.ColumnRef(WEIGHT_COLUMN)], plan.child
            )
    return plan


def is_weighted(schema: StructType) -> bool:
    """True when ``schema`` carries the reserved weight column."""
    return WEIGHT_COLUMN in schema


def weighted_schema(schema: StructType) -> StructType:
    """``schema`` with the weight column appended (idempotent)."""
    if is_weighted(schema):
        return schema
    return schema.add(WEIGHT_COLUMN, T.LONG, nullable=False)


def data_schema(schema: StructType) -> StructType:
    """``schema`` with the weight column removed (idempotent)."""
    if not is_weighted(schema):
        return schema
    return schema.select([n for n in schema.names if n != WEIGHT_COLUMN])


def weights_of(batch: RecordBatch) -> np.ndarray:
    """The weight column as an int64 array."""
    return np.asarray(batch.columns[WEIGHT_COLUMN], dtype=np.int64)


def attach_weights(batch: RecordBatch, weights) -> RecordBatch:
    """Append a weight column to an unweighted batch."""
    weights = np.asarray(weights, dtype=np.int64)
    columns = {n: batch.columns[n] for n in batch.schema.names}
    columns[WEIGHT_COLUMN] = weights
    return RecordBatch(columns, weighted_schema(batch.schema))


def strip_weights(batch: RecordBatch) -> RecordBatch:
    """Drop the weight column (keeping every row) from a weighted batch."""
    if not is_weighted(batch.schema):
        return batch
    return batch.select(data_schema(batch.schema).names)


def split_by_sign(batch: RecordBatch):
    """Split a weighted batch into its +1 and -1 parts, weight stripped.

    Returns ``(additions, retractions)`` as unweighted batches; row order
    within each part follows the input batch.
    """
    weights = weights_of(batch)
    bad = (weights != 1) & (weights != -1)
    if bad.any():
        raise ValueError(
            f"{WEIGHT_COLUMN} values must be +1 or -1, got "
            f"{sorted(set(weights[bad].tolist()))}"
        )
    data = strip_weights(batch)
    if (weights == 1).all():
        return data, RecordBatch.empty(data.schema)
    if (weights == -1).all():
        return RecordBatch.empty(data.schema), data
    return data.filter(weights == 1), data.filter(weights == -1)


def apply_zset(rows, key_names=None) -> list:
    """Apply a changelog of weighted row dicts; return the live table.

    ``rows`` is an iterable of dicts that may carry ``__weight__``
    (missing weight counts as ``+1``, so append-only changelogs work
    too).  Rows are identified by all their non-weight values; the
    result lists each live row once per surviving multiplicity, ordered
    by first *surviving* insertion — a row whose multiplicity returns to
    zero loses its slot and re-registers at the end if re-inserted, the
    order a changelog-compacted table (or this engine's sinks) keeps.
    """
    counts = {}
    samples = {}
    for row in rows:
        weight = int(row.get(WEIGHT_COLUMN, 1))
        data = {k: v for k, v in row.items() if k != WEIGHT_COLUMN}
        key = _row_key(data, key_names)
        count = counts.get(key, 0) + weight
        if count < 0:
            raise ValueError(f"negative multiplicity {count} for row {key!r}")
        if count == 0:
            counts.pop(key, None)
            samples.pop(key, None)
        else:
            counts[key] = count
            if weight > 0 or key not in samples:
                samples[key] = data  # latest upsert wins for keyed tables
    return [dict(samples[key]) for key, count in counts.items()
            for _ in range(count)]


def _row_key(data: dict, key_names):
    if key_names:
        return tuple(hashable_value(data[k]) for k in key_names)
    return tuple(sorted((k, hashable_value(v)) for k, v in data.items()))
