"""User-facing state handle for custom stateful processing (§4.3.2).

``GroupState`` is handed to the update function of
``map_groups_with_state`` / ``flat_map_groups_with_state`` and lets the
user read/update/remove per-key state and arm timeouts, exactly as in
Figure 3 of the paper::

    def update_func(key, rows, state):
        total = state.get_option(0) + sum(1 for _ in rows)
        state.update(total)
        state.set_timeout_duration("30 min")
        return {"events": total}

State values must be JSON-serializable: they are checkpointed to the
state store and must survive code updates (§7.1).
"""

from __future__ import annotations

from repro.sql.expressions import parse_duration


class GroupState:
    """Mutable per-key state visible to a user update function."""

    def __init__(self, value=None, exists: bool = False, has_timed_out: bool = False,
                 watermark=None, processing_time=None, timeout_conf: str = "none"):
        self._value = value
        self._exists = exists
        self._removed = False
        self._updated = False
        self._timeout_timestamp = None
        self._timeout_changed = False
        self.has_timed_out = has_timed_out
        self._watermark = watermark
        self._processing_time = processing_time
        self._timeout_conf = timeout_conf

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def exists(self) -> bool:
        """True if this key currently has state."""
        return self._exists and not self._removed

    def get(self):
        """The state value; raises ``KeyError`` if no state exists."""
        if not self.exists:
            raise KeyError("no state exists for this key; use get_option()")
        return self._value

    def get_option(self, default=None):
        """The state value, or ``default`` when no state exists."""
        return self._value if self.exists else default

    def update(self, value) -> None:
        """Set the state value (must be JSON-serializable)."""
        if value is None:
            raise ValueError("state value must not be None; use remove()")
        self._value = value
        self._exists = True
        self._removed = False
        self._updated = True

    def remove(self) -> None:
        """Drop this key from state tracking."""
        self._removed = True
        self._updated = True

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def set_timeout_duration(self, duration) -> None:
        """Arm a processing-time timeout ``duration`` from now.

        Only valid when the operator was created with
        ``timeout="processing_time"``.
        """
        if self._timeout_conf != "processing_time":
            raise RuntimeError(
                "set_timeout_duration requires timeout='processing_time'"
            )
        if self._processing_time is None:
            raise RuntimeError("processing time unavailable in this context")
        self._timeout_timestamp = self._processing_time + parse_duration(duration)
        self._timeout_changed = True

    def set_timeout_timestamp(self, timestamp) -> None:
        """Arm an event-time timeout firing when the watermark passes it.

        Only valid when the operator was created with
        ``timeout="event_time"``; the timestamp must be beyond the
        current watermark.
        """
        if self._timeout_conf != "event_time":
            raise RuntimeError(
                "set_timeout_timestamp requires timeout='event_time'"
            )
        if self._watermark is not None and timestamp <= self._watermark:
            raise ValueError(
                f"timeout timestamp {timestamp} is not beyond the current "
                f"watermark {self._watermark}"
            )
        self._timeout_timestamp = float(timestamp)
        self._timeout_changed = True

    @property
    def current_watermark(self):
        """The current event-time watermark (None if not watermarked)."""
        return self._watermark

    @property
    def current_processing_time(self):
        """The current processing time (epoch trigger time)."""
        return self._processing_time

    # ------------------------------------------------------------------
    # Engine-side outcome inspection
    # ------------------------------------------------------------------
    def _outcome(self) -> dict:
        """What the update function did (consumed by the operator)."""
        return {
            "updated": self._updated,
            "removed": self._removed,
            "value": self._value,
            "timeout_changed": self._timeout_changed,
            "timeout_timestamp": self._timeout_timestamp,
        }


def normalize_func_output(result, flat: bool, key_columns, key_tuple) -> list:
    """Convert a user function's return value into output row dicts.

    ``map_groups_with_state`` returns one value per call: a dict of
    output fields (merged with the key columns) or a scalar (stored as
    the single non-key output column by the caller's schema).  The flat
    variant returns an iterable of such dicts, or None.
    """
    key_fields = dict(zip(key_columns, key_tuple))
    if flat:
        if result is None:
            return []
        rows = []
        for item in result:
            row = dict(key_fields)
            row.update(item)
            rows.append(row)
        return rows
    if result is None:
        return []
    if not isinstance(result, dict):
        raise TypeError(
            "map_groups_with_state functions must return a dict of output "
            f"fields, got {type(result).__name__}"
        )
    row = dict(key_fields)
    row.update(result)
    return [row]
