"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The instrumentation contract mirrors :func:`repro.testing.faults.fault_point`:
every hot-path call site goes through a module-level helper (``count``,
``observe``, ``set_gauge``) whose disabled form is a single ``is None``
check — no registry installed means no dict lookups, no allocation, no
locks.  With a registry installed the helper is a dict hit on the metric
name plus an integer add (GIL-consistent; counters are exact on single
threads and best-effort under free-running thread contention, which is
fine for monitoring — authoritative per-stage numbers live in the
scheduler's stage reports).

Enable either programmatically (:func:`enable` / the :func:`enabled`
context manager) or by exporting ``REPRO_METRICS=1`` before the process
starts (read once at import, the way CI's instrumentation-on leg runs
the whole suite).

This module must stay import-light (stdlib only at import time): it is
imported by the lowest layers of the engine (``repro.storage``);
``numpy`` is only touched inside :meth:`Histogram.record_many`.
"""

from __future__ import annotations

import bisect
import os
import re
import threading

#: Default histogram bucket upper bounds, in seconds: 100µs .. 60s,
#: roughly logarithmic — wide enough for per-record continuous-mode
#: latency at the bottom and epoch/stage durations at the top.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> None:  # noqa: A003
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with percentile accessors.

    ``bounds`` are the *upper* bounds of the first ``len(bounds)``
    buckets (ascending); one implicit overflow bucket catches values
    above the last bound.  ``percentile(q)`` interpolates linearly
    inside the winning bucket, clamped to the observed min/max, so a
    histogram fed a single value reports that value at every quantile.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max",
                 "_lock")

    def __init__(self, name: str, bounds=DEFAULT_TIME_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def record(self, value) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def record_many(self, values) -> None:
        """Record a batch of observations (vectorized for numpy input)."""
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        indexes = np.searchsorted(self.bounds, values, side="left")
        per_bucket = np.bincount(indexes, minlength=len(self.counts))
        lo = float(values.min())
        hi = float(values.max())
        with self._lock:
            for i, n in enumerate(per_bucket):
                if n:
                    self.counts[i] += int(n)
            self.count += int(values.size)
            self.sum += float(values.sum())
            if self.min is None or lo < self.min:
                self.min = lo
            if self.max is None or hi > self.max:
                self.max = hi

    # ------------------------------------------------------------------
    def percentile(self, q: float):
        """The q-quantile (0 < q <= 1) estimated from the buckets."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = self.bounds[index - 1] if index > 0 else (
                    self.min if self.min is not None else 0.0)
                upper = self.bounds[index] if index < len(self.bounds) else (
                    self.max if self.max is not None else self.bounds[-1])
                fraction = (target - previous) / bucket_count
                value = lower + (upper - lower) * fraction
                # Clamp to what was actually observed: a single sample
                # must report itself, not its bucket's midpoint.
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
        return self.max

    @property
    def p50(self):
        return self.percentile(0.50)

    @property
    def p95(self):
        return self.percentile(0.95)

    @property
    def p99(self):
        return self.percentile(0.99)

    def percentiles_json(self) -> dict:
        """The monitor-facing summary ({} while empty)."""
        if self.count == 0:
            return {}
        return {
            "count": self.count,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def snapshot(self):
        return dict(self.percentiles_json(), buckets=list(self.counts))


class MetricsRegistry:
    """Named metrics for one process (usually the module-level default).

    ``counter``/``gauge``/``histogram`` are get-or-create: a dict hit
    when the metric is already registered (the steady state on hot
    paths).  Creation takes a lock; lookups do not (dict reads are
    GIL-atomic).
    """

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory(name)
                    self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, bounds=DEFAULT_TIME_BUCKETS) -> Histogram:
        return self._get_or_create(name, lambda n: Histogram(n, bounds))

    def register(self, metric) -> None:
        """Adopt an externally created metric object under its name."""
        with self._lock:
            self._metrics[metric.name] = metric

    def metric(self, name: str):
        """Registered metric by name, or None."""
        return self._metrics.get(name)

    def names(self) -> list:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """``{name: value-or-summary}`` for every registered metric."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def to_openmetrics(self) -> str:
        """The registry in the OpenMetrics / Prometheus text exposition
        format (one ``# TYPE`` per family, ``# EOF`` terminator).

        Dotted internal names map to ``repro_``-prefixed underscore
        families; the structured suffixes become labels so Prometheus
        can aggregate across them (the documented, stable mapping —
        see docs/observability.md):

        * ``state.puts.shard3``        -> ``repro_state_puts{shard="3"}``
        * ``op.FilterOp.rows_out``     -> ``repro_op_rows_out{operator="FilterOp"}``
        * ``engine.watermark_lag.ts``  -> ``repro_engine_watermark_lag{column="ts"}``

        Counters get the ``_total`` suffix; histograms expand to
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``;
        unset or non-numeric gauges are skipped.
        """
        families = {}  # exposition name -> {"type": ..., "samples": [...]}
        for name in self.names():
            metric = self._metrics[name]
            family, labels = _split_labels(name)
            kind = ("counter" if isinstance(metric, Counter) else
                    "gauge" if isinstance(metric, Gauge) else "histogram")
            exposition = _openmetrics_name(family)
            slot = families.get(exposition)
            if slot is not None and slot["type"] != kind:
                # Same family name, different metric class: keep both by
                # falling back to the full (un-labelled) name.
                exposition = _openmetrics_name(name)
                labels = {}
                slot = families.get(exposition)
            if slot is None:
                slot = families[exposition] = {"type": kind, "samples": []}
            slot["samples"].extend(_samples(metric, exposition, labels))
        lines = []
        for exposition in sorted(families):
            slot = families[exposition]
            if not slot["samples"]:
                continue
            lines.append(f"# TYPE {exposition} {slot['type']}")
            lines.extend(slot["samples"])
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# OpenMetrics exposition helpers
# ----------------------------------------------------------------------
_SHARD_SUFFIX = re.compile(r"^(?P<base>.+)\.shard(?P<shard>\d+)$")
_OP_METRIC = re.compile(r"^op\.(?P<op>.+)\.(?P<stat>rows_out)$")
_WATERMARK_LAG = re.compile(r"^engine\.watermark_lag\.(?P<column>.+)$")


def _split_labels(name: str):
    """Internal dotted name -> (family, labels) per the documented map."""
    match = _SHARD_SUFFIX.match(name)
    if match:
        return match.group("base"), {"shard": match.group("shard")}
    match = _OP_METRIC.match(name)
    if match:
        return f"op.{match.group('stat')}", {"operator": match.group("op")}
    match = _WATERMARK_LAG.match(name)
    if match:
        return "engine.watermark_lag", {"column": match.group("column")}
    return name, {}


def _openmetrics_name(family: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", family)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _fmt_number(value) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _samples(metric, exposition: str, labels: dict) -> list:
    rendered = _render_labels(labels)
    if isinstance(metric, Counter):
        return [f"{exposition}_total{rendered} {metric.value}"]
    if isinstance(metric, Gauge):
        value = _fmt_number(metric.value)
        if value is None:
            return []
        return [f"{exposition}{rendered} {value}"]
    # Histogram: cumulative buckets + sum/count.
    lines = []
    cumulative = 0
    for bound, count in zip(metric.bounds, metric.counts):
        cumulative += count
        le = dict(labels, le=_fmt_number(float(bound)))
        lines.append(f"{exposition}_bucket{_render_labels(le)} {cumulative}")
    le = dict(labels, le="+Inf")
    lines.append(f"{exposition}_bucket{_render_labels(le)} {metric.count}")
    lines.append(f"{exposition}_sum{rendered} {_fmt_number(float(metric.sum))}")
    lines.append(f"{exposition}_count{rendered} {metric.count}")
    return lines


# ----------------------------------------------------------------------
# Module-level installation (the cheap-when-disabled surface)
# ----------------------------------------------------------------------
_registry: MetricsRegistry | None = None


def enable(registry: MetricsRegistry = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process registry."""
    global _registry
    if registry is None:
        registry = MetricsRegistry()
    _registry = registry
    return registry


def disable() -> None:
    """Uninstall the process registry; helpers become no-ops again."""
    global _registry
    _registry = None


def active() -> MetricsRegistry | None:
    """The installed registry, if any."""
    return _registry


class enabled:
    """``with metrics.enabled() as reg:`` — scoped enablement for tests."""

    def __init__(self, registry: MetricsRegistry = None):
        self._registry = registry

    def __enter__(self) -> MetricsRegistry:
        self._previous = _registry
        return enable(self._registry)

    def __exit__(self, *exc) -> None:
        global _registry
        _registry = self._previous


# Hot-path helpers: a single None check when disabled.
def count(name: str, n: int = 1) -> None:
    """Increment a counter (no-op unless a registry is installed)."""
    if _registry is not None:
        _registry.counter(name).inc(n)


def set_gauge(name: str, value) -> None:
    """Set a gauge (no-op unless a registry is installed)."""
    if _registry is not None:
        _registry.gauge(name).set(value)


def observe(name: str, value) -> None:
    """Record one histogram observation (no-op unless installed)."""
    if _registry is not None:
        _registry.histogram(name).record(value)


def observe_many(name: str, values) -> None:
    """Record a batch of histogram observations (no-op unless installed)."""
    if _registry is not None:
        _registry.histogram(name).record_many(values)


def snapshot() -> dict:
    """Snapshot of the installed registry ({} when disabled)."""
    return _registry.snapshot() if _registry is not None else {}


def to_openmetrics() -> str:
    """OpenMetrics text for the installed registry (bare ``# EOF`` when
    metrics are disabled — still a valid, scrapeable exposition)."""
    if _registry is None:
        return "# EOF\n"
    return _registry.to_openmetrics()


if os.environ.get("REPRO_METRICS", "0") not in ("", "0"):
    enable()
