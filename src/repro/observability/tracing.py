"""Per-epoch span tracing with JSONL and Chrome trace-event export.

``trace_span(name, **attrs)`` is a context manager producing one span:
a monotonic start offset, a duration, the recording thread, and the
enclosing span (tracked per thread, so spans nest naturally — an
``epoch`` span contains ``stage:*`` spans which contain ``task:*``
spans, including spans recorded on scheduler worker threads).

Disabled (the default), ``trace_span`` returns a shared no-op context
manager after a single ``is None`` check — the same cheap-when-off
contract as :mod:`repro.observability.metrics` and ``fault_point``.
Enabled, finished spans land in a bounded ring buffer on the process
tracer; :func:`dump` (surfaced as ``StreamingQuery.dump_trace``)
exports them as JSON-lines or as the Chrome trace-event format that
``chrome://tracing`` / Perfetto load directly.

Enable programmatically (:func:`enable` / :class:`enabled`) or with
``REPRO_TRACE=1`` in the environment (read once at import).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time


class Tracer:
    """Buffers finished spans for one process (bounded ring)."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        #: Finished spans, oldest first once the ring wraps.  Appends
        #: are GIL-atomic, so worker threads record without a lock.
        self._spans = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: perf_counter origin: span timestamps are offsets from here.
        self.started_at = time.perf_counter()

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def record(self, span: dict) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[: len(self._spans) - self.capacity]

    @property
    def spans(self) -> list:
        """Finished spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def spans_named(self, name: str) -> list:
        return [s for s in self.spans if s["name"] == name]

    def spans_for_epoch(self, epoch: int) -> list:
        """Spans tagged with ``epoch`` (via span attrs), oldest first."""
        return [s for s in self.spans if s.get("args", {}).get("epoch") == epoch]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """Chrome trace-event JSON (complete "X" events, µs units)."""
        events = []
        for span in self.spans:
            events.append({
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": span["start_us"],
                "dur": span["duration_us"],
                "pid": os.getpid(),
                "tid": span["tid"],
                "args": dict(span.get("args", {}), span_id=span["id"],
                             parent_id=span["parent"]),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, path: str, fmt: str = None) -> int:
        """Write the buffered spans to ``path``; returns the span count.

        ``fmt`` is ``"chrome"`` or ``"jsonl"``; inferred from the file
        extension when omitted (``.jsonl`` -> JSONL, anything else ->
        Chrome trace-event JSON).
        """
        if fmt is None:
            fmt = "jsonl" if path.endswith(".jsonl") else "chrome"
        if fmt not in ("chrome", "jsonl"):
            raise ValueError(f"unknown trace format {fmt!r}")
        spans = self.spans
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            if fmt == "jsonl":
                for span in spans:
                    f.write(json.dumps(span) + "\n")
            else:
                json.dump(self.to_chrome(), f)
        return len(spans)


class _Span:
    """A live span; records itself on exit."""

    __slots__ = ("tracer", "name", "args", "id", "parent", "_start")

    def __init__(self, tracer: Tracer, name: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.id = next(tracer._ids)
        stack = tracer._stack()
        self.parent = stack[-1].id if stack else None
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        tracer = self.tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        thread = threading.current_thread()
        tracer.record({
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "start_us": (self._start - tracer.started_at) * 1e6,
            "duration_us": (end - self._start) * 1e6,
            "tid": thread.ident,
            "thread": thread.name,
            "args": self.args,
        })


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_SPAN = _NullSpan()

# ----------------------------------------------------------------------
# Module-level installation
# ----------------------------------------------------------------------
_tracer: Tracer | None = None


def enable(tracer: Tracer = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process tracer."""
    global _tracer
    if tracer is None:
        tracer = Tracer()
    _tracer = tracer
    return tracer


def disable() -> None:
    """Uninstall the process tracer; ``trace_span`` becomes a no-op."""
    global _tracer
    _tracer = None


def active() -> Tracer | None:
    """The installed tracer, if any."""
    return _tracer


class enabled:
    """``with tracing.enabled() as tracer:`` — scoped enablement."""

    def __init__(self, tracer: Tracer = None):
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        self._previous = _tracer
        return enable(self._tracer)

    def __exit__(self, *exc) -> None:
        global _tracer
        _tracer = self._previous


def trace_span(name: str, **attrs):
    """Context manager for one span (shared no-op when disabled)."""
    if _tracer is None:
        return _NULL_SPAN
    return _Span(_tracer, name, attrs)


def dump(path: str, fmt: str = None) -> int:
    """Export the process tracer's buffer (0 spans when disabled)."""
    if _tracer is None:
        return 0
    return _tracer.dump(path, fmt)


if os.environ.get("REPRO_TRACE", "0") not in ("", "0"):
    enable()
