"""Flight recorder: the last N epochs, durable at the moment of death.

The live metrics/tracing layer (PR 5) answers "how is the query doing
*now*" but keeps no history a crash can't destroy — exactly when an
operator needs it most (§2.3's monitoring challenge; the event-log /
postmortem design of Spark's own event logging).  Every engine carries a
:class:`FlightRecorder`: an always-on, always-cheap ring buffer of the
last N epochs' progress snapshots (including watermark positions, stage
timings, and bottleneck attribution), per-epoch metric deltas when the
registry is live, and noteworthy one-off events (recovery, scheduler
retries, worker deaths, prior crashes).

When a query dies — ``StreamingQuery.exception`` fires, a fault-sweep
cell crashes the engine, or the user calls ``query.dump_postmortem()``
— the ring is serialized atomically as a self-contained
``postmortem.json`` in the checkpoint directory.  Existing dumps are
rotated (``postmortem-1.json`` .. ``postmortem-3.json``) so successive
crashes never overwrite each other; recovery picks prior dumps up and
records them in the new recorder's event stream.

The dump path deliberately bypasses :mod:`repro.storage` (and with it
every registered fault point): a postmortem written *because* of an
injected storage crash must not re-enter the crashing code, and a
failed dump must never mask the original exception — ``dump`` swallows
its own errors and returns ``None``.

Cost model: recording one epoch is a ``to_json()`` (already produced
for ``events.jsonl``) plus a deque append; metric deltas are collected
only while a registry is installed; span summaries are computed only at
dump time.  Nothing here touches checkpoint bytes — ``postmortem.json``
lives outside the ``offsets``/``commits``/``state`` directories that
recovery and the checkpoint fingerprint read.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.observability import metrics, tracing
from repro.observability.metrics import Counter, Gauge

#: Postmortem document schema version (bump on breaking layout changes).
SCHEMA_VERSION = 1
#: Epochs retained in the ring.
DEFAULT_CAPACITY = 64
#: One-off events retained (recovery notes, scheduler incidents, ...).
EVENT_CAPACITY = 128
#: Rotated prior dumps kept next to ``postmortem.json``.
MAX_ROTATED = 3


def postmortem_path(checkpoint_dir: str) -> str:
    """The canonical dump path for a checkpoint directory."""
    return os.path.join(checkpoint_dir, "postmortem.json")


def load_postmortem(path: str):
    """Parse a postmortem file (or a checkpoint dir's newest dump);
    returns the document dict, or None when absent/unreadable."""
    if os.path.isdir(path):
        path = postmortem_path(path)
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


class FlightRecorder:
    """Per-engine crash recorder with atomic, rotated dumps."""

    def __init__(self, checkpoint_dir: str, engine: str = "microbatch",
                 capacity: int = DEFAULT_CAPACITY, clock=time.time):
        self.checkpoint_dir = checkpoint_dir
        self.engine = engine
        self.clock = clock
        self._epochs = deque(maxlen=capacity)
        self._events = deque(maxlen=EVENT_CAPACITY)
        self._prev_counters = {}
        self._lock = threading.Lock()
        #: Error object of the last crash dump (identity-deduplicated so
        #: an exception surfaced at several boundaries dumps once).
        self._dumped_error = None
        self._last_path = None
        #: Prior dumps found at recovery time (paths), newest first.
        self.prior_postmortems = []

    # ------------------------------------------------------------------
    # Recording (hot-ish path: once per epoch / per incident)
    # ------------------------------------------------------------------
    def record_epoch(self, progress) -> None:
        """Append one completed epoch's snapshot to the ring."""
        entry = progress.to_json()
        delta = self._metrics_delta()
        if delta:
            entry["metricsDelta"] = delta
        with self._lock:
            self._epochs.append(entry)
        tasks = progress.task_metrics or {}
        retries = tasks.get("retries", 0)
        deaths = (tasks.get("executor") or {}).get("worker_deaths", 0)
        if retries or deaths:
            self.note("scheduler", epoch=progress.epoch_id,
                      retries=retries, worker_deaths=deaths)

    def note(self, kind: str, **info) -> None:
        """Record a one-off scheduler/worker/lifecycle event."""
        event = {"ts": self.clock(), "kind": kind}
        event.update(info)
        with self._lock:
            self._events.append(event)

    def adopt_prior_dumps(self) -> list:
        """Pick up dumps a previous incarnation left in the checkpoint
        (called during recovery); they stay on disk until rotation."""
        found = []
        base = postmortem_path(self.checkpoint_dir)
        candidates = [base] + [
            os.path.join(self.checkpoint_dir, f"postmortem-{k}.json")
            for k in range(1, MAX_ROTATED + 1)
        ]
        for path in candidates:
            doc = load_postmortem(path)
            if doc is not None:
                found.append(path)
                self.note("prior-postmortem", path=os.path.basename(path),
                          reason=doc.get("reason"),
                          crash=doc.get("crash"))
        self.prior_postmortems = found
        return found

    def _metrics_delta(self):
        """Counter deltas since the previous epoch + current gauges
        (None while no registry is installed)."""
        registry = metrics.active()
        if registry is None:
            self._prev_counters = {}
            return None
        delta = {}
        current = {}
        for name, metric in list(registry._metrics.items()):
            if isinstance(metric, Counter):
                value = metric.value
                current[name] = value
                step = value - self._prev_counters.get(name, 0)
                if step:
                    delta[name] = step
            elif isinstance(metric, Gauge):
                if isinstance(metric.value, (int, float)):
                    delta[name] = metric.value
        self._prev_counters = current
        return delta

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def to_json(self, reason: str, error=None, epoch=None) -> dict:
        """The self-contained postmortem document."""
        with self._lock:
            epochs = list(self._epochs)
            events = list(self._events)
        crash = None
        if error is not None or epoch is not None:
            crash = {
                "epoch": epoch,
                "error": str(error) if error is not None else None,
                "type": type(error).__name__ if error is not None else None,
            }
        return {
            "version": SCHEMA_VERSION,
            "reason": reason,
            "dumped_at": self.clock(),
            "engine": self.engine,
            "checkpoint_dir": self.checkpoint_dir,
            "crash": crash,
            "epochs": epochs,
            "events": events,
            "metrics": metrics.snapshot(),
            "spans": self._span_summaries(epochs),
            "prior_postmortems": [os.path.basename(p)
                                  for p in self.prior_postmortems],
        }

    def dump(self, reason: str, error=None, epoch=None,
             force: bool = False):
        """Atomically write ``postmortem.json``; returns its path.

        Identity-deduplicated on ``error`` unless ``force``: the same
        exception surfacing at run_epoch, stop(), and the query loop
        produces one dump.  Never raises — a broken disk during the
        postmortem must not mask the crash being recorded.
        """
        if (not force and error is not None
                and error is self._dumped_error):
            return self._last_path
        try:
            document = self.to_json(reason, error=error, epoch=epoch)
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            self._rotate()
            path = postmortem_path(self.checkpoint_dir)
            tmp = path + ".tmp"
            # Direct write + os.replace on purpose: repro.storage's
            # atomic_write carries fault points that must not fire
            # while reporting a fault.
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(document, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except Exception:
            return None
        if error is not None:
            self._dumped_error = error
        self._last_path = path
        return path

    def _rotate(self) -> None:
        """Shift ``postmortem.json`` -> ``postmortem-1.json`` -> ... so
        a new dump never erases a predecessor (up to MAX_ROTATED)."""
        base = postmortem_path(self.checkpoint_dir)
        if not os.path.exists(base):
            return
        stem = os.path.join(self.checkpoint_dir, "postmortem-%d.json")
        for k in range(MAX_ROTATED - 1, 0, -1):
            if os.path.exists(stem % k):
                os.replace(stem % k, stem % (k + 1))
        os.replace(base, stem % 1)

    # ------------------------------------------------------------------
    def _span_summaries(self, epochs: list) -> dict:
        """Per-epoch span rollups for epochs still in the ring.

        Child spans don't carry an ``epoch`` attribute — they nest under
        one that does (the ``epoch`` span, or a ``task:*`` span) — so
        each buffered span's epoch is resolved by walking its parent
        chain.  Dump-time only: one pass over the tracer's ring.
        """
        tracer = tracing.active()
        if tracer is None:
            return {}
        wanted = {entry.get("epoch") for entry in epochs}
        wanted.discard(None)
        if not wanted:
            return {}
        spans = tracer.spans
        by_id = {span["id"]: span for span in spans}
        resolved = {}

        def epoch_of(span):
            span_id = span["id"]
            if span_id in resolved:
                return resolved[span_id]
            chain = []
            current = span
            epoch = None
            while current is not None:
                if current["id"] in resolved:
                    epoch = resolved[current["id"]]
                    break
                chain.append(current["id"])
                epoch = (current.get("args") or {}).get("epoch")
                if epoch is not None:
                    break
                current = by_id.get(current.get("parent"))
            for span_id in chain:
                resolved[span_id] = epoch
            return epoch

        summaries = {}
        for span in spans:
            epoch = epoch_of(span)
            if epoch not in wanted:
                continue
            per_epoch = summaries.setdefault(str(epoch), {})
            slot = per_epoch.setdefault(
                span["name"], {"count": 0, "total_us": 0.0})
            slot["count"] += 1
            slot["total_us"] += span["duration_us"]
        return summaries
