"""A minimal Prometheus-scrapeable endpoint over the metrics registry.

``MetricsServer`` wraps stdlib ``http.server`` in a daemon thread: every
GET renders the OpenMetrics text exposition fresh (by default from the
process registry via :func:`repro.observability.metrics.to_openmetrics`;
a custom ``render`` callable supports the monitor's replay-from-
``events.jsonl`` mode).  Surfaced as ``query.serve_metrics(port)`` and
``python -m repro.tools.monitor --serve``.

Binds localhost by default — this is an operator diagnostic, not a
hardened production listener.  ``port=0`` picks a free port (tests).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observability import metrics

#: The content type Prometheus negotiates for OpenMetrics 1.0.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class MetricsServer:
    """Serves OpenMetrics text on ``/metrics`` (and any other path)."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1", render=None):
        self._render = render if render is not None else metrics.to_openmetrics
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                try:
                    body = server._render().encode("utf-8")
                    status = 200
                except Exception as exc:  # surface render bugs to the scraper
                    body = f"# render error: {exc}\n".encode("utf-8")
                    status = 500
                self.send_response(status)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet: no per-scrape stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="metrics-server",
            daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread.join(timeout=5)

    # Context-manager sugar for tests and scripts.
    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
