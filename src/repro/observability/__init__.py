"""End-to-end observability: metrics registry, span tracing, monitoring.

The operational layer the paper motivates in §2.3 (monitoring and
management of continuous jobs) and §7.4 (the progress/metrics API):

* :mod:`repro.observability.metrics` — process-wide counters, gauges
  and fixed-bucket histograms with percentile accessors, exportable in
  the OpenMetrics text format (``MetricsRegistry.to_openmetrics``);
* :mod:`repro.observability.tracing` — nested spans per epoch, stage,
  and shard task, exportable to ``chrome://tracing``;
* :mod:`repro.observability.flightrec` — the always-on flight recorder
  behind crash ``postmortem.json`` dumps;
* :mod:`repro.observability.bottleneck` — folds per-phase/operator
  timings into "where is the time going" attribution;
* :mod:`repro.observability.serve` — a Prometheus-scrapeable HTTP
  endpoint over the registry;
* ``python -m repro.tools.monitor`` — a text dashboard over a query's
  ``events.jsonl`` or a crash postmortem.

The metrics/tracing layers are disabled by default and cost one
``is None`` branch per call site when off (the ``fault_point``
pattern); enable them with ``REPRO_METRICS=1`` / ``REPRO_TRACE=1`` or
programmatically.  The flight recorder is always on: its per-epoch cost
is one snapshot append, independent of both switches.
"""

from __future__ import annotations

from repro.observability import bottleneck, metrics, tracing
from repro.observability.flightrec import FlightRecorder
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import Tracer, trace_span


def active() -> bool:
    """True when either the metrics registry or the tracer is enabled.

    The engines use this single check to skip *derived* bookkeeping
    (per-operator rows, stage timings) entirely when observability is
    off, keeping the disabled path at one branch per epoch phase.
    """
    return metrics._registry is not None or tracing._tracer is not None


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "active",
    "bottleneck",
    "metrics",
    "trace_span",
    "tracing",
]
