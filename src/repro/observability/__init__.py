"""End-to-end observability: metrics registry, span tracing, monitoring.

The operational layer the paper motivates in §2.3 (monitoring and
management of continuous jobs) and §7.4 (the progress/metrics API):

* :mod:`repro.observability.metrics` — process-wide counters, gauges
  and fixed-bucket histograms with percentile accessors;
* :mod:`repro.observability.tracing` — nested spans per epoch, stage,
  and shard task, exportable to ``chrome://tracing``;
* ``python -m repro.tools.monitor`` — a text dashboard over a query's
  ``events.jsonl``.

Both layers are disabled by default and cost one ``is None`` branch per
call site when off (the ``fault_point`` pattern); enable them with
``REPRO_METRICS=1`` / ``REPRO_TRACE=1`` or programmatically.
"""

from __future__ import annotations

from repro.observability import metrics, tracing
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import Tracer, trace_span


def active() -> bool:
    """True when either the metrics registry or the tracer is enabled.

    The engines use this single check to skip *derived* bookkeeping
    (per-operator rows, stage timings) entirely when observability is
    off, keeping the disabled path at one branch per epoch phase.
    """
    return metrics._registry is not None or tracing._tracer is not None


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "active",
    "metrics",
    "trace_span",
    "tracing",
]
