"""Bottleneck attribution: name where an epoch's time went (§2.3, §7.4).

The engines already time every phase of the Figure-4 protocol
(``stage_timings``) and every operator's ``process`` share
(``operator_metrics``) while observability is enabled.  This module
folds those raw timings into a small attribution model so the answer to
"why was that epoch slow" is one name with a share, not a table the
operator has to eyeball:

* ``source-read``        — reading the epoch's input ranges, plus any
  time the pipelined engine stalled waiting on the prefetcher;
* ``stage:<Op>``         — one incremental operator's compute (the
  ``process`` phase is split by per-operator seconds; plan overhead
  outside any operator reports as ``stage:plan``);
* ``wal-sync``           — offsets + commit entries and group-commit
  barrier fsyncs;
* ``sink``               — the idempotent sink write;
* ``state-commit``       — synchronous state checkpointing;
* ``flusher-backpressure`` — time the engine blocked on the async state
  flusher draining (pipelined mode);

Unknown phases pass through under their own name, so new engine phases
degrade to visible-but-unclassified instead of silently vanishing.

``attribute`` works on one epoch, ``attribute_many`` on a window of
(stage_timings, operator_metrics) pairs, and ``attribute_events`` on
the camelCase event dicts from ``events.jsonl`` or a postmortem — the
same model serves ``query.bottleneck()``, ``EpochProgress.bottleneck``,
and the monitor's "where is the time going" panel.
"""

from __future__ import annotations

#: Engine phase -> attribution category.
CATEGORY_FOR_PHASE = {
    "read-inputs": "source-read",
    "prefetch-wait": "source-read",
    "wal-offsets": "wal-sync",
    "wal-commit": "wal-sync",
    "group-sync": "wal-sync",
    "sink-write": "sink",
    "state-commit": "state-commit",
    "flusher-wait": "flusher-backpressure",
}


def fold_costs(stage_timings: dict, operator_metrics: dict) -> dict:
    """Merge raw phase/operator timings into ``{category: seconds}``.

    The ``process`` phase is split across ``stage:<Op>`` entries by the
    operators' own measured seconds; whatever remains (batch plumbing,
    shard dispatch) is attributed to ``stage:plan``.
    """
    costs = {}
    process_seconds = 0.0
    for phase, seconds in (stage_timings or {}).items():
        if not isinstance(seconds, (int, float)) or seconds <= 0:
            continue
        if phase == "process":
            process_seconds = seconds
            continue
        category = CATEGORY_FOR_PHASE.get(phase, phase)
        costs[category] = costs.get(category, 0.0) + seconds
    operator_seconds = 0.0
    for op, stats in (operator_metrics or {}).items():
        seconds = stats.get("seconds", 0.0)
        if seconds > 0:
            key = f"stage:{op}"
            costs[key] = costs.get(key, 0.0) + seconds
            operator_seconds += seconds
    leftover = process_seconds - operator_seconds
    if leftover > 0:
        costs["stage:plan"] = costs.get("stage:plan", 0.0) + leftover
    return costs


def _from_costs(costs: dict, epochs: int = 1):
    total = sum(costs.values())
    if total <= 0:
        return {}
    name, seconds = max(costs.items(), key=lambda kv: kv[1])
    return {
        "name": name,
        "seconds": seconds,
        "share": seconds / total,
        "total_seconds": total,
        "epochs": epochs,
        "breakdown": [
            {"name": n, "seconds": s, "share": s / total}
            for n, s in sorted(costs.items(), key=lambda kv: -kv[1])
        ],
    }


def attribute(stage_timings: dict, operator_metrics: dict = None) -> dict:
    """Attribution for one epoch; ``{}`` when no timings were collected
    (observability disabled)."""
    return _from_costs(fold_costs(stage_timings, operator_metrics))


def attribute_many(pairs) -> dict:
    """Attribution over a window of ``(stage_timings, operator_metrics)``
    pairs (e.g. ``query.recent_progress``)."""
    merged = {}
    epochs = 0
    for stage_timings, operator_metrics in pairs:
        costs = fold_costs(stage_timings, operator_metrics)
        if not costs:
            continue
        epochs += 1
        for name, seconds in costs.items():
            merged[name] = merged.get(name, 0.0) + seconds
    return _from_costs(merged, epochs=epochs)


def attribute_events(events) -> dict:
    """Attribution over event-log / postmortem epoch dicts (camelCase
    keys, as written by ``EpochProgress.to_json``)."""
    return attribute_many(
        (event.get("stageTimings"), event.get("operatorMetrics"))
        for event in events
    )


def summary(stage_timings: dict, operator_metrics: dict = None) -> dict:
    """The compact per-epoch form stored on ``EpochProgress.bottleneck``
    and in ``events.jsonl`` (name/share/seconds only)."""
    full = attribute(stage_timings, operator_metrics)
    if not full:
        return {}
    return {"name": full["name"], "share": round(full["share"], 4),
            "seconds": full["seconds"]}
