"""Sessionization with map_groups_with_state — Figure 3 of the paper.

Tracks the number of events in each user session, where a session ends
after 30 minutes of inactivity (a processing-time timeout).  Closed
sessions are emitted with a negative marker and their state dropped.

Run:  python examples/sessionization.py
"""

from repro import MemoryStream, Session

EVENTS = (("user_id", "string"), ("page", "string"))
SESSIONS = (("user_id", "string"), ("events", "long"), ("closed", "boolean"))


def update_func(key, new_values, state):
    """Track the number of events for each key as its state; time out
    keys after 30 minutes (the paper's updateFunc, in Python)."""
    if state.has_timed_out:
        total = state.get_option(0)
        state.remove()
        return {"events": total, "closed": True}
    total = state.get_option(0) + sum(1 for _ in new_values)
    state.update(total)
    state.set_timeout_duration("30 min")
    return {"events": total, "closed": False}


def main():
    session = Session()
    events = MemoryStream(EVENTS)
    lens = (session.read_stream.memory(events)
            .group_by_key("user_id")
            .map_groups_with_state(update_func, SESSIONS,
                                   timeout="processing_time"))
    query = (lens.write_stream.format("memory").query_name("sessions")
             .output_mode("update").start())

    # Fake the clock so the timeout demo is deterministic.
    now = [0.0]
    query.engine.clock = lambda: now[0]

    events.add_data([
        {"user_id": "alice", "page": "home"},
        {"user_id": "alice", "page": "search"},
        {"user_id": "bob", "page": "home"},
    ])
    query.process_all_available()
    print("open sessions: ", sorted(session.table("sessions").collect(), key=str))

    # Alice keeps browsing; Bob goes idle for 45 minutes.
    now[0] += 45 * 60
    events.add_data([{"user_id": "alice", "page": "checkout"}])
    query.process_all_available()
    print("after timeout: ", sorted(session.table("sessions").collect(), key=str))

    # Aggregating the session table (the paper: "compute metrics such as
    # the average number of events per session").
    from repro.sql import functions as F

    stats = (session.table("sessions")
             .group_by(F.lit(1).alias("all"))
             .agg(F.avg("events").alias("avg_events_per_session")))
    print("session stats:", stats.collect())


if __name__ == "__main__":
    main()
