"""Quickstart: the paper's §4.1 example, batch and streaming.

A batch job counts clicks by country from JSON files; changing only the
input and output lines turns it into a continuously updating streaming
job — the transformation in the middle is untouched.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import Session
from repro.sinks.file import TransactionalFileSink
from repro.storage import write_jsonl

SCHEMA = (("country", "string"), ("clicks", "long"))


def main():
    workdir = tempfile.mkdtemp(prefix="quickstart-")
    in_dir = os.path.join(workdir, "in")
    counts_dir = os.path.join(workdir, "counts")
    checkpoint = os.path.join(workdir, "checkpoint")
    session = Session()

    # Some input files appear...
    write_jsonl(os.path.join(in_dir, "0001.jsonl"), [
        {"country": "US", "clicks": 1}, {"country": "CA", "clicks": 1},
        {"country": "US", "clicks": 1},
    ])

    # ---- The batch version (paper: spark.read / write) ----------------
    data = session.read.json(in_dir, SCHEMA)
    counts = data.group_by("country").count()
    counts.write.mode("overwrite").json(os.path.join(workdir, "batch_counts"))
    print("batch result: ", sorted(counts.collect(), key=str))

    # ---- The streaming version: only the first and last lines change --
    data = session.read_stream.json(in_dir, SCHEMA)
    counts = data.group_by("country").count()
    query = (counts.write_stream.format("file").option("path", counts_dir)
             .output_mode("complete")
             .start(checkpoint))

    query.process_all_available()
    sink = TransactionalFileSink(counts_dir)
    print("stream result:", sorted(sink.read_rows(), key=str))

    # New files continually arrive; the query updates /counts incrementally.
    write_jsonl(os.path.join(in_dir, "0002.jsonl"), [
        {"country": "MX", "clicks": 1}, {"country": "US", "clicks": 1},
    ])
    query.process_all_available()
    print("after update: ", sorted(sink.read_rows(), key=str))

    progress = query.last_progress
    print(f"last epoch processed {progress.input_rows} rows "
          f"({progress.input_rows_per_second:,.0f} rows/s), "
          f"state keys: {progress.state_keys}")


if __name__ == "__main__":
    main()
