"""Analyzing game performance — the §8.3 production use case.

A gaming company monitors the latency its players experience.  Latency
logs stream in from game clients; a streaming job joins them with a
static table of Internet Autonomous Systems (ASes), aggregates
performance per AS over event-time windows, and raises an alert when an
AS degrades so IT staff can contact it.  Player *sessions* (gap-based,
via the reproduction's session-window helper, §4.3.2) feed engagement
metrics.

Run:  python examples/game_performance.py
"""

from repro import Broker, Session
from repro.sql import functions as F
from repro.streaming.sessions import session_windows

PINGS = (("player_id", "string"), ("ip_prefix", "string"),
         ("latency_ms", "double"), ("t", "timestamp"))
AS_TABLE = (("ip_prefix", "string"), ("as_name", "string"))


def main():
    session = Session()
    broker = Broker()
    broker.create_topic("latency-logs", 4)

    as_table = session.create_dataframe([
        {"ip_prefix": "203.0.113", "as_name": "AS-GOODNET"},
        {"ip_prefix": "198.51.100", "as_name": "AS-FLAKYISP"},
    ], AS_TABLE)

    pings = (session.read_stream.kafka(broker, "latency-logs", PINGS)
             .with_watermark("t", "30 seconds"))

    # --- per-AS performance over 60 s windows + degradation alerts -----
    per_as = (pings.join(as_table, on="ip_prefix")
              .group_by(F.col("as_name"), F.window("t", "60 seconds"))
              .agg(F.avg("latency_ms").alias("avg_latency"),
                   F.count().alias("samples")))
    alerts = []
    alert_query = (per_as.where(F.col("avg_latency") > 150)
                   .write_stream
                   .foreach(lambda e, rows, mode: alerts.extend(rows))
                   .output_mode("update").start())

    dashboards = (per_as.write_stream.format("memory")
                  .query_name("as_performance").output_mode("update").start())

    # --- player sessions (gap 5 minutes) for engagement metrics --------
    sessions = session_windows(pings, ["player_id"], "t", gap="5 minutes")
    session_query = (sessions.write_stream.format("memory")
                     .query_name("play_sessions").output_mode("append").start())

    # Traffic: a healthy AS, then one degrading badly.
    def ping(player, prefix, ms, t):
        return {"player_id": player, "ip_prefix": prefix,
                "latency_ms": ms, "t": t}

    broker.topic("latency-logs").publish_to(0, [
        ping("p1", "203.0.113", 35.0, 5.0),
        ping("p2", "198.51.100", 48.0, 10.0),
        ping("p1", "203.0.113", 38.0, 20.0),
    ])
    broker.topic("latency-logs").publish_to(1, [
        ping("p2", "198.51.100", 250.0, 70.0),   # AS-FLAKYISP degrades
        ping("p2", "198.51.100", 310.0, 80.0),
        ping("p1", "203.0.113", 36.0, 75.0),
    ])
    # Idle gap, then p1 returns: closes p1's first session.
    broker.topic("latency-logs").publish_to(0, [
        ping("p1", "203.0.113", 37.0, 900.0),
        ping("p1", "203.0.113", 39.0, 1500.0),
        ping("p1", "203.0.113", 40.0, 2200.0),
    ])
    for q in (alert_query, dashboards, session_query):
        q.process_all_available()

    print("per-AS window performance:")
    for row in session.sql(
        "SELECT as_name, window_start, round(avg_latency, 1) AS ms, samples "
        "FROM as_performance ORDER BY window_start, as_name"
    ).collect():
        print("  ", row)

    print("\ndegradation alerts (IT contacts the AS, §8.3):")
    for alert in alerts:
        print("  ", dict(alert))

    print("\nclosed play sessions:")
    for row in session.table("play_sessions").collect():
        print("  ", row)


if __name__ == "__main__":
    main()
