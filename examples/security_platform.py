"""Information security platform — the §8.1 production use case.

Reproduces the architecture of Figure 5 end to end, in-process:

1. IDS appliances write raw logs to cloud storage (here: bus topics);
2. a Structured Streaming job ETLs them into a compact transactional
   table (Delta-style file sink) for interactive analysis;
3. a stream-stream join attributes TCP connections to devices: TCP logs
   joined with DHCP logs to map dynamic IPs to MAC addresses, joined
   with the static device inventory;
4. a streaming alert detects DNS exfiltration: hosts whose aggregate DNS
   request bytes over a 30 s event-time window exceed a threshold the
   analyst tuned on historical data.

Run:  python examples/security_platform.py
"""

import os
import tempfile

from repro import Broker, Session
from repro.sinks.file import TransactionalFileSink
from repro.sql import functions as F

TCP_SCHEMA = (("src_ip", "string"), ("dst_ip", "string"),
              ("bytes", "long"), ("t", "timestamp"))
DHCP_SCHEMA = (("src_ip", "string"), ("mac", "string"), ("t2", "timestamp"))
DNS_SCHEMA = (("host", "string"), ("query_bytes", "long"), ("t", "timestamp"))
DEVICES = (("mac", "string"), ("owner", "string"))


def main():
    workdir = tempfile.mkdtemp(prefix="security-")
    session = Session()
    broker = Broker()
    broker.create_topic("tcp", 2)
    broker.create_topic("dhcp", 1)
    broker.create_topic("dns", 2)

    # ------------------------------------------------------------------
    # (1)+(2) ETL raw TCP logs into a transactional table for analysts.
    # ------------------------------------------------------------------
    tcp_raw = session.read_stream.kafka(broker, "tcp", TCP_SCHEMA)
    etl = tcp_raw.where(F.col("bytes") > 0)  # drop malformed records
    table_dir = os.path.join(workdir, "tcp_table")
    etl_query = (etl.write_stream.format("file").option("path", table_dir)
                 .output_mode("append")
                 .start(os.path.join(workdir, "ckpt-etl")))

    # ------------------------------------------------------------------
    # (3) Attribute connections to devices: TCP x DHCP x device inventory.
    # ------------------------------------------------------------------
    devices = session.create_dataframe(
        [{"mac": "aa:bb", "owner": "alice-laptop"},
         {"mac": "cc:dd", "owner": "conference-tv"}], DEVICES)
    tcp = (session.read_stream.kafka(broker, "tcp", TCP_SCHEMA)
           .with_watermark("t", "60 seconds"))
    dhcp = (session.read_stream.kafka(broker, "dhcp", DHCP_SCHEMA)
            .with_watermark("t2", "60 seconds"))
    # The DHCP lease must be recent relative to the connection: a
    # time-bounded stream-stream join (|t - t2| <= 1h) keeps state
    # bounded by the watermark (§5.2).
    attributed = (tcp.join(dhcp, on="src_ip", within=("t", "t2", "1 hour"))
                  .join(devices, on="mac"))          # MAC -> device owner
    attr_query = (attributed.write_stream.format("memory")
                  .query_name("attributed_connections")
                  .output_mode("append")
                  .start(os.path.join(workdir, "ckpt-attr")))

    # ------------------------------------------------------------------
    # (4) DNS exfiltration alert: aggregate request size per host/window.
    # ------------------------------------------------------------------
    threshold = 10_000  # tuned on historical data by the analyst (§8.1)
    dns = (session.read_stream.kafka(broker, "dns", DNS_SCHEMA)
           .with_watermark("t", "30 seconds"))
    suspicious = (dns.group_by(F.col("host"), F.window("t", "30 seconds"))
                  .agg(F.sum("query_bytes").alias("total_bytes"))
                  .where(F.col("total_bytes") > threshold))
    alerts = []
    alert_query = (suspicious.write_stream
                   .foreach(lambda e, rows, mode: alerts.extend(rows))
                   .output_mode("update")
                   .start(os.path.join(workdir, "ckpt-alerts")))

    # ------------------------------------------------------------------
    # Traffic arrives.
    # ------------------------------------------------------------------
    broker.topic("dhcp").publish_to(0, [
        {"src_ip": "10.0.0.5", "mac": "aa:bb", "t2": 0.0},
        {"src_ip": "10.0.0.9", "mac": "cc:dd", "t2": 1.0},
    ])
    broker.topic("tcp").publish_to(0, [
        {"src_ip": "10.0.0.5", "dst_ip": "93.184.216.34", "bytes": 1200, "t": 5.0},
        {"src_ip": "10.0.0.9", "dst_ip": "93.184.216.34", "bytes": 0, "t": 6.0},
        {"src_ip": "10.0.0.9", "dst_ip": "151.101.1.69", "bytes": 800, "t": 7.0},
    ])
    # A compromised host tunneling data out via DNS.
    broker.topic("dns").publish_to(0, [
        {"host": "10.0.0.5", "query_bytes": 64, "t": 2.0},
        {"host": "10.0.0.13", "query_bytes": 6_000, "t": 3.0},
        {"host": "10.0.0.13", "query_bytes": 7_500, "t": 4.0},
    ])

    for query in (etl_query, attr_query, alert_query):
        query.process_all_available()

    # Analysts query fresh data interactively (same engine, same API).
    print("attributed connections:")
    for row in session.sql(
        "SELECT owner, dst_ip, bytes FROM attributed_connections ORDER BY bytes DESC"
    ).collect():
        print("  ", row)

    print("exfiltration alerts:")
    for alert in alerts:
        print("  ", alert)

    table = TransactionalFileSink(table_dir)
    print(f"ETL table holds {len(table.read_rows())} clean TCP records "
          f"(atomic, exactly-once manifests: {len(table.committed_manifests())} epochs)")


if __name__ == "__main__":
    main()
