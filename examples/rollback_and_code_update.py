"""Operational features: code updates and manual rollback (§7.1, §7.2).

Scenario from the paper: an application outputs wrong results for a
while before anyone notices (a field that fails to parse reported as
NULL).  The administrator inspects the human-readable JSON write-ahead
log, rolls the application back to the epoch where the problem started,
deploys fixed code, and the engine recomputes everything from that
prefix of the input — output stays prefix-consistent throughout.

Run:  python examples/rollback_and_code_update.py
"""

import json
import os
import tempfile

from repro import Broker, Session
from repro.sql import functions as F

RAW = (("line", "string"),)
PARSED = (("sensor", "string"), ("celsius", "double"))


def make_pipeline(session, broker, parse):
    raw = session.read_stream.kafka(broker, "readings", RAW)
    parse_udf = F.udf(parse, "double")
    sensor_udf = F.udf(lambda line: line.split(":")[0], "string")
    return raw.select(
        sensor_udf(F.col("line")).alias("sensor"),
        parse_udf(F.col("line")).alias("celsius"),
    )


def buggy_parse(line):
    """v1: silently mis-parses Fahrenheit-suffixed readings as Celsius."""
    value = line.split(":")[1]
    return float(value.rstrip("F"))  # BUG: drops the unit, keeps the number


def fixed_parse(line):
    """v2: converts Fahrenheit correctly."""
    value = line.split(":")[1]
    if value.endswith("F"):
        return (float(value[:-1]) - 32.0) * 5.0 / 9.0
    return float(value)


def main():
    workdir = tempfile.mkdtemp(prefix="rollback-")
    checkpoint = os.path.join(workdir, "ckpt")
    session = Session()
    broker = Broker()
    broker.create_topic("readings", 1)

    emitted = []
    def collect(epoch, rows, mode):
        emitted.append((epoch, rows))

    from repro.sinks.foreach import ForeachSink
    sink = ForeachSink(collect)

    # --- v1 runs for a while, producing wrong epoch-1 output -----------
    df_v1 = make_pipeline(session, broker, buggy_parse)
    q1 = df_v1.write_stream.sink(sink).output_mode("append").start(checkpoint)
    broker.topic("readings").publish_to(0, [{"line": "roof:21.5"}])
    q1.process_all_available()
    broker.topic("readings").publish_to(0, [{"line": "lab:70F"}])  # wrong!
    q1.process_all_available()
    print("output so far (epoch 1 is wrong):")
    for epoch, rows in emitted:
        print(f"  epoch {epoch}: {rows}")

    # --- The administrator inspects the JSON log and rolls back --------
    offsets_dir = os.path.join(checkpoint, "offsets")
    print("\nwrite-ahead log (human-readable, §7.2):")
    for name in sorted(os.listdir(offsets_dir)):
        with open(os.path.join(offsets_dir, name)) as f:
            entry = json.load(f)
        print(f"  epoch {entry['epoch']}: offsets {entry['sources']}")

    q1.engine.wal.rollback_to(0)     # discard epoch 1 from the log
    emitted[:] = [e for e in emitted if e[0] == 0]
    sink._epochs.discard(1)          # remove faulty output from the sink

    # --- v2 restarts from the same checkpoint and recomputes -----------
    df_v2 = make_pipeline(session, broker, fixed_parse)
    q2 = df_v2.write_stream.sink(sink).output_mode("append").start(checkpoint)
    q2.process_all_available()
    print("\nafter rollback + code update (epoch 1 recomputed):")
    for epoch, rows in emitted:
        print(f"  epoch {epoch}: {rows}")


if __name__ == "__main__":
    main()
