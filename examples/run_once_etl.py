"""Discontinuous processing: the run-once trigger (§7.3).

Many ETL jobs want a streaming engine's bookkeeping — which input has
been processed, which results are durably saved — without paying for a
24/7 cluster.  Running a single epoch every few hours gives exactly-once
ETL at batch cost: the WAL tracks input offsets across invocations, so
each run picks up precisely where the previous one stopped, even across
"cluster teardowns" (here: fresh engine objects).

Run:  python examples/run_once_etl.py
"""

import os
import tempfile

from repro import Broker, Session
from repro.cluster.costmodel import DeploymentCostModel
from repro.sinks.file import TransactionalFileSink
from repro.sql import functions as F

EVENTS = (("device", "string"), ("reading", "double"), ("t", "timestamp"))


def run_once(session, broker, out_dir, checkpoint):
    """One scheduled invocation: start, drain one epoch, tear down."""
    events = session.read_stream.kafka(broker, "sensor-logs", EVENTS)
    cleaned = (events.where(F.col("reading").is_not_null())
               .where(F.col("reading") >= 0))
    query = (cleaned.write_stream.format("file").option("path", out_dir)
             .output_mode("append")
             .trigger(once=True)          # the run-once trigger
             .start(checkpoint))
    query.await_termination()
    return query.last_progress


def main():
    workdir = tempfile.mkdtemp(prefix="runonce-")
    out_dir = os.path.join(workdir, "clean")
    checkpoint = os.path.join(workdir, "ckpt")
    session = Session()
    broker = Broker()
    broker.create_topic("sensor-logs", 1)

    table = TransactionalFileSink(out_dir)
    for hour in range(3):
        # Data accumulates between scheduled runs.
        broker.topic("sensor-logs").publish_to(0, [
            {"device": f"d{i}", "reading": float(i - 1), "t": hour * 3600.0 + i}
            for i in range(4)  # one negative reading to clean out
        ])
        progress = run_once(session, broker, out_dir, checkpoint)
        processed = progress.input_rows if progress else 0
        print(f"run {hour}: processed {processed} new records, "
              f"table now has {len(table.read_rows())} rows")

    # What does this save? The paper reports up to 10x (§7.3).
    model = DeploymentCostModel(
        arrival_rate_records_per_second=50,
        processing_rate_records_per_second=500_000,
        nodes=4, startup_seconds=90.0,
    )
    month = 30 * 24 * 3600.0
    for hours in (1, 4, 24):
        ratio = model.savings_ratio(month, hours * 3600.0)
        latency = model.max_latency(hours * 3600.0) / 3600.0
        print(f"run-once every {hours:>2}h: {ratio:5.1f}x cheaper than 24/7 "
              f"(worst-case staleness {latency:.2f}h)")


if __name__ == "__main__":
    main()
