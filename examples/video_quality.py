"""Live video delivery monitoring — the §8.2 production use case.

A media company collects per-client video quality metrics, aggregates
them with Structured Streaming in event time, stores results in a
queryable table, and lets operations engineers interactively diagnose
problems (e.g. whether an issue is tied to a specific ISP or server).

Run:  python examples/video_quality.py
"""

from repro import Broker, Session
from repro.sql import functions as F

METRICS = (("isp", "string"), ("server", "string"),
           ("buffer_ratio", "double"), ("bitrate_kbps", "double"),
           ("t", "timestamp"))


def main():
    session = Session()
    broker = Broker()
    broker.create_topic("client-metrics", 4)

    metrics = (session.read_stream.kafka(broker, "client-metrics", METRICS)
               .with_watermark("t", "30 seconds"))

    # Quality per (ISP, 60s window): rebuffering and delivered bitrate.
    quality = (metrics
               .group_by(F.col("isp"), F.window("t", "60 seconds"))
               .agg(F.avg("buffer_ratio").alias("avg_buffering"),
                    F.avg("bitrate_kbps").alias("avg_bitrate"),
                    F.count().alias("samples")))
    query = (quality.write_stream.format("memory").query_name("video_quality")
             .output_mode("update").start())

    def sample(isp, server, buffering, bitrate, t):
        return {"isp": isp, "server": server, "buffer_ratio": buffering,
                "bitrate_kbps": bitrate, "t": t}

    # Healthy traffic, then an ISP starts degrading mid-stream.
    broker.topic("client-metrics").publish_to(0, [
        sample("comnet", "sfo-1", 0.01, 4800.0, 10.0),
        sample("comnet", "sfo-2", 0.02, 4700.0, 15.0),
        sample("fiberco", "sfo-1", 0.01, 5200.0, 20.0),
    ])
    query.process_all_available()

    broker.topic("client-metrics").publish_to(1, [
        sample("comnet", "sfo-1", 0.35, 1400.0, 70.0),   # degraded!
        sample("comnet", "sfo-2", 0.41, 1100.0, 75.0),
        sample("fiberco", "sfo-1", 0.02, 5100.0, 80.0),
    ])
    query.process_all_available()

    # The operations engineer investigates interactively on fresh data.
    print("per-ISP quality by window:")
    for row in session.sql(
        "SELECT isp, window_start, avg_buffering, avg_bitrate "
        "FROM video_quality ORDER BY window_start, isp"
    ).collect():
        print("  ", row)

    print("\nis the problem ISP-wide or one server? (drill-down)")
    per_server = (session.table("video_quality"))
    degraded = session.sql(
        "SELECT isp, window_start, avg_buffering FROM video_quality "
        "WHERE avg_buffering > 0.2"
    ).collect()
    for row in degraded:
        print("   DEGRADED:", row)
    del per_server


if __name__ == "__main__":
    main()
