"""Observability demo: metrics, spans, and the monitor dashboard (§7.4).

Runs a windowed aggregation with the observability layer enabled,
then shows the three monitoring surfaces:

1. the per-epoch progress events (``events.jsonl``) rendered by the
   ``repro.tools.monitor`` dashboard;
2. a metrics-registry snapshot (state puts per shard, WAL writes,
   sink deliveries, epoch timings);
3. a span trace exported in Chrome trace-event format — open the
   printed path in ``chrome://tracing`` or https://ui.perfetto.dev.

Run:  python examples/observability_demo.py
"""

import os
import tempfile

from repro import Session
from repro.observability import metrics, tracing
from repro.sources.memory import MemoryStream
from repro.sql import functions as F
from repro.sql.types import StructType
from repro.tools import monitor

SCHEMA = StructType((("user", "string"), ("latency_ms", "long"),
                     ("event_time", "double")))


def main():
    metrics.enable()
    tracing.enable()
    workdir = tempfile.mkdtemp(prefix="observability-demo-")
    checkpoint = os.path.join(workdir, "checkpoint")
    session = Session()
    stream = MemoryStream(SCHEMA)

    df = (session.read_stream.memory(stream)
          .with_watermark("event_time", "10 seconds")
          .group_by(F.window("event_time", "5 seconds"), F.col("user"))
          .agg(F.avg("latency_ms").alias("avg_latency")))
    query = (df.write_stream.format("memory").query_name("latency_by_user")
             .output_mode("update")
             .option("num_shards", 4)
             .start(checkpoint))

    for epoch in range(5):
        stream.add_data([
            {"user": f"u{i % 7}", "latency_ms": 20 + (i * 13) % 80,
             "event_time": epoch * 5.0 + (i % 5)}
            for i in range(50)
        ])
        query.process_all_available()

    print("== monitor dashboard " + "=" * 46)
    print(monitor.render(monitor.load_events(checkpoint)), end="")

    print("== metrics snapshot (selected) " + "=" * 36)
    snapshot = query.metrics_snapshot()
    for name in sorted(snapshot):
        if name.split(".")[0] in ("engine", "wal", "sink", "scheduler") \
                or name.startswith("state.puts"):
            value = snapshot[name]
            if isinstance(value, dict):
                value = {k: round(v, 5) if isinstance(v, float) else v
                         for k, v in value.items() if k != "buckets"}
            print(f"  {name:<28} {value}")

    trace_path = os.path.join(workdir, "trace.json")
    spans = query.dump_trace(trace_path)
    print("== trace " + "=" * 58)
    print(f"  {spans} spans -> {trace_path}")
    print("  load it in chrome://tracing or https://ui.perfetto.dev")

    query.stop()
    return checkpoint


if __name__ == "__main__":
    main()
