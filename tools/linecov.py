#!/usr/bin/env python3
"""Dependency-free line coverage for the test suite.

CI measures coverage with pytest-cov; this script is the fallback for
environments where coverage.py is not installed (the local toolchain
ships only numpy/pytest/hypothesis).  It records executed lines with
``sys.settrace`` — the only portable hook before ``sys.monitoring``
(3.12) — counts executable lines from compiled code objects
(``co_lines``), and fails when total coverage drops below the floor.

Usage::

    PYTHONPATH=src python tools/linecov.py [--fail-under PCT] [pytest args...]

Caveats (why the floor is a little below pytest-cov's number): lines
executed only inside forked worker processes (the process executor) or
before tracing starts are not recorded, and ``co_lines`` counts a few
artifact lines (e.g. module docstrings) that coverage.py excludes.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")

_executed = defaultdict(set)


def _local_trace(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(SRC_ROOT):
        return _local_trace
    return None


def executable_lines(path: str) -> set:
    """All line numbers the compiler marks executable in ``path``."""
    with open(path, "r", encoding="utf-8") as f:
        source = f.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(ln for _, _, ln in code.co_lines() if ln is not None)
        stack.extend(c for c in code.co_consts if hasattr(c, "co_lines"))
    return lines


def source_files() -> list:
    files = []
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        files.extend(os.path.join(dirpath, n)
                     for n in filenames if n.endswith(".py"))
    return sorted(files)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--fail-under", type=float, default=0.0,
                        help="minimum acceptable total line coverage (percent)")
    parser.add_argument("--worst", type=int, default=10,
                        help="how many least-covered files to list")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments passed through to pytest")
    opts, unknown = parser.parse_known_args(argv)
    opts.pytest_args = opts.pytest_args + unknown

    import pytest  # after parsing, so --help stays instant

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        status = pytest.main(opts.pytest_args or ["-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if status != 0:
        print(f"linecov: pytest exited {status}; coverage not evaluated")
        return int(status)

    per_file = []
    total_exec = total_hit = 0
    for path in source_files():
        want = executable_lines(path)
        if not want:
            continue
        hit = len(want & _executed.get(path, set()))
        total_exec += len(want)
        total_hit += hit
        per_file.append((100.0 * hit / len(want), hit, len(want),
                         os.path.relpath(path, REPO_ROOT)))

    percent = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nlinecov: {total_hit}/{total_exec} lines "
          f"({percent:.2f}%) across {len(per_file)} files")
    for pct, hit, want, rel in sorted(per_file)[:opts.worst]:
        print(f"  {pct:6.2f}%  {hit:5d}/{want:<5d}  {rel}")
    if percent < opts.fail_under:
        print(f"linecov: FAIL — total coverage {percent:.2f}% is below "
              f"the floor {opts.fail_under:.2f}%")
        return 2
    print(f"linecov: OK (floor {opts.fail_under:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
