#!/usr/bin/env python3
"""Benchmark history and regression report.

``make bench-smoke`` consolidates each run's numbers into
``benchmarks/results/bench_latest.json``; this tool turns that snapshot
into a *trajectory*:

* ``--append`` records the snapshot as one line in
  ``benchmarks/results/BENCH_history.jsonl`` (machine-readable,
  append-only, one entry per recorded run);
* the report compares the snapshot against the most recent history
  entry from the same host class (same core count — a 1-core CI box
  must not be diffed against a 16-core dev machine) and flags any
  metric that moved more than ``--threshold`` (default 10%) in the
  *bad* direction.

Metric direction is inferred from the name: throughput-like metrics
(``*_per_second``, ``speedup``, ``throughput``) regress when they drop;
cost-like metrics (``*_ms``, ``*_us``, ``*_seconds``, ``latency``,
``*_bytes``, ``p50``/``p95``/``p99``) regress when they rise.  Metrics
with no recognizable direction are reported but never gate.

Exit status is 0 unless ``--strict`` is passed *and* a regression was
flagged — the CI step stays non-blocking by default (benchmarks on
shared runners are noisy; the report is for humans and artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LATEST_JSON = os.path.join(REPO_ROOT, "benchmarks", "results",
                           "bench_latest.json")
HISTORY_JSONL = os.path.join(REPO_ROOT, "benchmarks", "results",
                             "BENCH_history.jsonl")

#: Per-suite bookkeeping keys that are not measurements.
STAMP_KEYS = {"git_sha", "host_cores", "recorded_at", "smoke"}
#: Name fragments implying "higher is better" / "lower is better".
HIGHER_BETTER = ("per_second", "per_sec", "throughput", "speedup",
                 "epochs_per", "rows_per", "records_per")
LOWER_BETTER = ("_ms", "_us", "_seconds", "latency", "_bytes", "bytes_",
                "p50", "p95", "p99", "probe", "rss_")


def load_latest(path: str = LATEST_JSON) -> dict:
    """The consolidated snapshot, or {} when no benchmarks ran yet."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return {}


def load_history(path: str = HISTORY_JSONL) -> list:
    """All recorded history entries, oldest first (torn lines skipped)."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue
    return entries


def snapshot_stamp(latest: dict) -> dict:
    """Run-level stamp derived from the suites' own stamps."""
    shas = [s.get("git_sha") for s in latest.values()
            if isinstance(s, dict) and s.get("git_sha")]
    cores = [s.get("host_cores") for s in latest.values()
             if isinstance(s, dict) and s.get("host_cores")]
    times = [s.get("recorded_at") for s in latest.values()
             if isinstance(s, dict)
             and isinstance(s.get("recorded_at"), (int, float))]
    return {
        "git_sha": shas[-1] if shas else None,
        "host_cores": max(cores) if cores else (os.cpu_count() or 1),
        "recorded_at": max(times) if times else None,
    }


def append_history(latest: dict, path: str = HISTORY_JSONL):
    """Append the snapshot as one history line; returns the entry
    written, or None when the snapshot is empty."""
    if not latest:
        return None
    entry = snapshot_stamp(latest)
    entry["suites"] = latest
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def numeric_leaves(data, prefix: str = ""):
    """Yield ``(dotted.path, value)`` for every numeric measurement."""
    for key in sorted(data) if isinstance(data, dict) else ():
        if key in STAMP_KEYS:
            continue
        value = data[key]
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            yield from numeric_leaves(value, path)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            yield path, float(value)


def direction(metric: str):
    """+1 higher-is-better, -1 lower-is-better, None unknown."""
    name = metric.lower()
    if any(tag in name for tag in HIGHER_BETTER):
        return 1
    if any(tag in name for tag in LOWER_BETTER):
        return -1
    return None


def compare(latest: dict, baseline_suites: dict, threshold: float) -> list:
    """Diff every shared metric; returns rows of
    ``(metric, old, new, change_fraction, regressed)``."""
    rows = []
    for suite, data in sorted(latest.items()):
        if not isinstance(data, dict):
            continue
        base = baseline_suites.get(suite)
        if not isinstance(base, dict):
            continue
        old_values = dict(numeric_leaves(base, suite))
        for metric, new in numeric_leaves(data, suite):
            old = old_values.get(metric)
            if old is None or old == 0:
                continue
            change = (new - old) / abs(old)
            sense = direction(metric)
            regressed = (sense is not None
                         and -sense * change > threshold)
            rows.append((metric, old, new, change, regressed))
    return rows


def _fmt(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.4g}"


def report(latest: dict, history: list, threshold: float,
           history_path: str = HISTORY_JSONL) -> list:
    """Print the trajectory + diff; returns the flagged regressions."""
    if not latest:
        print("no bench_latest.json found - run `make bench-smoke` first")
        return []
    stamp = snapshot_stamp(latest)
    print(f"benchmark snapshot: {len(latest)} suites "
          f"(git {stamp['git_sha'] or '?'}, "
          f"{stamp['host_cores']} cores)")
    print(f"history: {len(history)} recorded runs "
          f"in {os.path.relpath(history_path, REPO_ROOT)}")
    same_host = [e for e in history
                 if e.get("host_cores") == stamp["host_cores"]]
    if not same_host:
        print("no prior same-host entry to diff against")
        return []
    baseline = same_host[-1]
    print(f"baseline: git {baseline.get('git_sha') or '?'} "
          f"({len(same_host)} same-host entries)")
    regressions = []
    for metric, old, new, change, regressed in compare(
            latest, baseline.get("suites", {}), threshold):
        if abs(change) < 0.01:
            continue  # noise floor: don't print sub-1% wiggle
        flag = ""
        if regressed:
            flag = f"  << REGRESSION (>{threshold:.0%})"
            regressions.append(metric)
        print(f"  {metric:<58} {_fmt(old):>12} -> {_fmt(new):>12} "
              f"{change:+7.1%}{flag}")
    if not regressions:
        print(f"no regressions beyond {threshold:.0%}")
    else:
        print(f"{len(regressions)} metric(s) regressed beyond "
              f"{threshold:.0%}")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_report.py",
        description="Benchmark trajectory report and regression gate",
    )
    parser.add_argument("--latest", default=LATEST_JSON,
                        help="consolidated snapshot to report on")
    parser.add_argument("--history", default=HISTORY_JSONL,
                        help="append-only history file (jsonl)")
    parser.add_argument("--append", action="store_true",
                        help="record the snapshot into the history file")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="regression flag threshold (default 0.10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a regression is flagged")
    args = parser.parse_args(argv)

    latest = load_latest(args.latest)
    history = load_history(args.history)
    regressions = report(latest, history, args.threshold,
                         history_path=args.history)
    if args.append:
        entry = append_history(latest, args.history)
        if entry is not None:
            print(f"recorded snapshot (git {entry['git_sha'] or '?'}) "
                  f"-> {os.path.relpath(args.history, REPO_ROOT)}")
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
