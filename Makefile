# Convenience targets for the reproduction.

PY ?= python3
# Extra pytest flags for bench-smoke; CI passes --timeout=... here
# (requires pytest-timeout, which is not a local dependency).
BENCH_SMOKE_FLAGS ?=
# Same pattern for the fault sweep.
FAULT_SWEEP_FLAGS ?=
# Line-coverage floor for `make coverage`, set just below the measured
# value (91.5% via tools/linecov.py) so genuine regressions fail while
# run-to-run noise does not.  pytest-cov (CI) and tools/linecov.py (the
# local fallback) agree to within about a point; see tools/linecov.py.
COV_FLOOR ?= 90

.PHONY: install test test-fast coverage bench bench-smoke bench-report fault-sweep examples monitor-demo verify clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest -m "not slow" tests/

coverage:
	@if $(PY) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PY) -m pytest --cov=repro --cov-report=term --cov-fail-under=$(COV_FLOOR) tests/; \
	else \
		echo "pytest-cov not installed; using tools/linecov.py fallback"; \
		$(PY) tools/linecov.py --fail-under $(COV_FLOOR); \
	fi

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	STATE_SCALING_SMOKE=1 FIG6B_SMOKE=1 $(PY) -m pytest benchmarks/test_state_scaling.py "benchmarks/test_fig6b_scaling.py::test_worker_sweep_process_executor" "benchmarks/test_run_once_cost.py::test_pipelined_epoch_throughput" benchmarks/test_fig7_continuous_latency.py --benchmark-only -q $(BENCH_SMOKE_FLAGS)
	@echo "consolidated results: benchmarks/results/bench_latest.json"
	$(PY) tools/bench_report.py --append

bench-report:
	$(PY) tools/bench_report.py

fault-sweep:
	$(PY) -m pytest tests/test_fault_sweep.py tests/test_fault_injection.py -q $(FAULT_SWEEP_FLAGS)

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done
	@echo "all examples ran"

monitor-demo:
	$(PY) examples/observability_demo.py

verify: test bench examples

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
