# Convenience targets for the reproduction.

PY ?= python3
# Extra pytest flags for bench-smoke; CI passes --timeout=... here
# (requires pytest-timeout, which is not a local dependency).
BENCH_SMOKE_FLAGS ?=
# Same pattern for the fault sweep.
FAULT_SWEEP_FLAGS ?=

.PHONY: install test bench bench-smoke fault-sweep examples monitor-demo verify clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	STATE_SCALING_SMOKE=1 FIG6B_SMOKE=1 $(PY) -m pytest benchmarks/test_state_scaling.py "benchmarks/test_fig6b_scaling.py::test_worker_sweep_process_executor" "benchmarks/test_run_once_cost.py::test_pipelined_epoch_throughput" benchmarks/test_fig7_continuous_latency.py --benchmark-only -q $(BENCH_SMOKE_FLAGS)
	@echo "consolidated results: benchmarks/results/bench_latest.json"

fault-sweep:
	$(PY) -m pytest tests/test_fault_sweep.py tests/test_fault_injection.py -q $(FAULT_SWEEP_FLAGS)

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done
	@echo "all examples ran"

monitor-demo:
	$(PY) examples/observability_demo.py

verify: test bench examples

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
